package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig injects communication faults on the sender side of the TCP
// transport: each outgoing data frame is independently dropped (never
// written), duplicated (written twice), or delayed (written asynchronously
// after Delay, racing the sender's retransmission timer). Faults exercise
// the reliability layer — acknowledged retransmission plus receiver-side
// sequence dedup keeps delivery exactly-once, so solver numerics are
// unaffected by any fault mix.
type FaultConfig struct {
	DropProb  float64
	DupProb   float64
	DelayProb float64
	Delay     time.Duration
	Seed      int64
}

func (f FaultConfig) enabled() bool {
	return f.DropProb > 0 || f.DupProb > 0 || f.DelayProb > 0
}

// TCPConfig tunes the loopback transport's reliability layer.
type TCPConfig struct {
	Fault FaultConfig
	// AckTimeout is the initial retransmission timeout; it doubles on every
	// retry (exponential backoff). Defaults to 200ms.
	AckTimeout time.Duration
	// MaxRetries bounds retransmissions per message; once exhausted Send
	// returns a *RetryExhaustedError instead of blocking forever. Defaults
	// to 8.
	MaxRetries int
}

// RetryExhaustedError reports a message that was never acknowledged within
// MaxRetries retransmissions — the typed "give up" signal the fault tests
// assert on (via errors.As) in place of a hang.
type RetryExhaustedError struct {
	From, To, Attempts int
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("dist: send %d→%d unacknowledged after %d attempts", e.From, e.To, e.Attempts)
}

// Frame types on the wire. See DESIGN.md §2j for the full format.
const (
	frameData = 0
	frameAck  = 1
)

// maxFramePayload bounds a frame so a corrupt length prefix cannot drive a
// pathological allocation.
const maxFramePayload = 1 << 26

// tcpLink is the sender-side state of one directed process pair. The
// sender's worker goroutine is the only writer of data frames (wmu guards
// against the asynchronous delayed-write fault path) and serveAcks is the
// only reader of ack frames, so each direction of the connection has
// exactly one reader and one writer.
type tcpLink struct {
	conn net.Conn
	ack  chan uint64
	seq  uint64
	buf  []byte
	wmu  sync.Mutex
}

// TCPTransport connects P in-process "processes" over a full mesh of
// loopback TCP connections carrying length-prefixed binary frames. Every
// data frame is positively acknowledged by the receiver; the sender
// retransmits on timeout with exponential backoff and the receiver dedups
// by per-link sequence number, so delivery is exactly-once and per-link
// FIFO even under injected drop/duplicate/delay faults.
type TCPTransport struct {
	cfg       TCPConfig
	boxes     []*mailbox
	links     [][]*tcpLink // links[from][to]; nil on the diagonal
	listeners []net.Listener
	retries   atomic.Int64
	faultMu   sync.Mutex
	faultRng  *rand.Rand
	closed    chan struct{}
	once      sync.Once
	wg        sync.WaitGroup
}

// NewTCPTransport builds the p-process loopback mesh: p listeners on
// 127.0.0.1:0, one dialed connection per ordered pair, identified by a
// 4-byte hello carrying the dialer's process id.
func NewTCPTransport(p int, cfg TCPConfig) (*TCPTransport, error) {
	if p <= 0 {
		p = 1
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 200 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	t := &TCPTransport{
		cfg:       cfg,
		boxes:     make([]*mailbox, p),
		links:     make([][]*tcpLink, p),
		listeners: make([]net.Listener, p),
		faultRng:  rand.New(rand.NewSource(cfg.Fault.Seed)),
		closed:    make(chan struct{}),
	}
	for i := 0; i < p; i++ {
		t.boxes[i] = newMailbox()
		t.links[i] = make([]*tcpLink, p)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("dist: tcp listen: %w", err)
		}
		t.listeners[i] = ln
	}
	// Accept loops: each process i accepts p−1 inbound connections, reads
	// the dialer's hello, and serves data frames from that peer.
	var acceptWG sync.WaitGroup
	acceptErrs := make([]error, p)
	for i := 0; i < p; i++ {
		acceptWG.Add(1)
		go func(i int) {
			defer acceptWG.Done()
			for j := 0; j < p-1; j++ {
				conn, err := t.listeners[i].Accept()
				if err != nil {
					acceptErrs[i] = err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					acceptErrs[i] = err
					conn.Close()
					return
				}
				from := int(int32(binary.LittleEndian.Uint32(hello[:])))
				if from < 0 || from >= p || from == i {
					acceptErrs[i] = fmt.Errorf("dist: tcp hello from invalid process %d", from)
					conn.Close()
					return
				}
				t.wg.Add(1)
				go t.serveData(i, conn)
			}
		}(i)
	}
	// Dial the full mesh.
	var dialErr error
	for from := 0; from < p && dialErr == nil; from++ {
		for to := 0; to < p; to++ {
			if to == from {
				continue
			}
			conn, err := net.Dial("tcp", t.listeners[to].Addr().String())
			if err != nil {
				dialErr = err
				break
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(int32(from)))
			if _, err := conn.Write(hello[:]); err != nil {
				dialErr = err
				conn.Close()
				break
			}
			link := &tcpLink{conn: conn, ack: make(chan uint64, 64)}
			t.links[from][to] = link
			t.wg.Add(1)
			go t.serveAcks(link)
		}
	}
	acceptWG.Wait()
	if dialErr == nil {
		for _, err := range acceptErrs {
			if err != nil {
				dialErr = err
				break
			}
		}
	}
	if dialErr != nil {
		t.Close()
		return nil, fmt.Errorf("dist: tcp mesh setup: %w", dialErr)
	}
	return t, nil
}

func (t *TCPTransport) Name() string { return "tcp" }
func (t *TCPTransport) P() int       { return len(t.boxes) }

// Retries reports the total number of retransmitted data frames; exposed
// through the adatm_dist_retries metric.
func (t *TCPTransport) Retries() int64 { return t.retries.Load() }

// Send transmits m and blocks until the receiver acknowledges it,
// retransmitting on timeout with exponential backoff.
func (t *TCPTransport) Send(m *Message) error {
	p := len(t.boxes)
	if m.From < 0 || m.From >= p || m.To < 0 || m.To >= p || m.From == m.To {
		return fmt.Errorf("dist: tcp send with invalid route %d→%d (P=%d)", m.From, m.To, p)
	}
	link := t.links[m.From][m.To]
	link.seq++
	link.buf = appendDataFrame(link.buf[:0], m, link.seq)
	timeout := t.cfg.AckTimeout
	for attempt := 1; ; attempt++ {
		if err := t.writeFaulty(link); err != nil {
			return err
		}
		acked, err := t.waitAck(link, link.seq, timeout)
		if err != nil {
			return err
		}
		if acked {
			return nil
		}
		if attempt > t.cfg.MaxRetries {
			return &RetryExhaustedError{From: m.From, To: m.To, Attempts: attempt}
		}
		t.retries.Add(1)
		timeout *= 2
	}
}

// waitAck blocks until the link's current sequence number is acknowledged
// (true), the timeout fires (false), or the transport closes (error).
// Stale acks — retransmission duplicates of earlier sequence numbers —
// are drained and ignored.
func (t *TCPTransport) waitAck(link *tcpLink, seq uint64, timeout time.Duration) (bool, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case s := <-link.ack:
			if s >= seq {
				return true, nil
			}
		case <-timer.C:
			return false, nil
		case <-t.closed:
			return false, ErrClosed
		}
	}
}

// writeFaulty writes the link's encoded frame, applying any configured
// fault: drop skips the write entirely, duplicate writes the frame twice,
// delay hands a copy to a goroutine that writes it after Fault.Delay
// (racing the retransmission timer, which is what exercises dedup).
func (t *TCPTransport) writeFaulty(link *tcpLink) error {
	f := t.cfg.Fault
	if f.enabled() {
		t.faultMu.Lock()
		drop := t.faultRng.Float64() < f.DropProb
		dup := t.faultRng.Float64() < f.DupProb
		delay := t.faultRng.Float64() < f.DelayProb
		t.faultMu.Unlock()
		if drop {
			return nil
		}
		if delay && f.Delay > 0 {
			frame := append([]byte(nil), link.buf...)
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				select {
				case <-time.After(f.Delay):
				case <-t.closed:
					return
				}
				link.wmu.Lock()
				link.conn.Write(frame)
				link.wmu.Unlock()
			}()
			return nil
		}
		if dup {
			if err := t.writeFrame(link, link.buf); err != nil {
				return err
			}
		}
	}
	return t.writeFrame(link, link.buf)
}

func (t *TCPTransport) writeFrame(link *tcpLink, frame []byte) error {
	link.wmu.Lock()
	_, err := link.conn.Write(frame)
	link.wmu.Unlock()
	if err != nil {
		select {
		case <-t.closed:
			return ErrClosed
		default:
		}
		return fmt.Errorf("dist: tcp write: %w", err)
	}
	return nil
}

func (t *TCPTransport) Recv(proc int) (*Message, error) {
	if proc < 0 || proc >= len(t.boxes) {
		return nil, fmt.Errorf("dist: recv on invalid process %d (P=%d)", proc, len(t.boxes))
	}
	return t.boxes[proc].get()
}

func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for _, row := range t.links {
			for _, link := range row {
				if link != nil {
					link.conn.Close()
				}
			}
		}
		for _, b := range t.boxes {
			b.close()
		}
	})
	return nil
}

// serveData is the receiver-side reader of one inbound connection: it
// decodes data frames, delivers each sequence number exactly once to the
// process mailbox, and acknowledges every arrival — duplicates included,
// since a duplicate usually means the original ack was lost.
func (t *TCPTransport) serveData(to int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	seen := make(map[uint64]struct{})
	var ackBuf [13]byte
	for {
		ftype, seq, msg, err := readFrame(br)
		if err != nil {
			return
		}
		if ftype != frameData || msg == nil {
			continue
		}
		if _, dup := seen[seq]; !dup {
			seen[seq] = struct{}{}
			if t.boxes[to].put(msg) != nil {
				return
			}
		}
		binary.LittleEndian.PutUint32(ackBuf[0:4], 9)
		ackBuf[4] = frameAck
		binary.LittleEndian.PutUint64(ackBuf[5:13], seq)
		if _, err := conn.Write(ackBuf[:]); err != nil {
			return
		}
	}
}

// serveAcks is the sender-side reader of one dialed connection: it feeds
// acknowledged sequence numbers to the link's ack channel, discarding
// when the channel is full (a lost ack is recovered by retransmission).
func (t *TCPTransport) serveAcks(link *tcpLink) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(link.conn, 1<<12)
	for {
		ftype, seq, _, err := readFrame(br)
		if err != nil {
			return
		}
		if ftype != frameAck {
			continue
		}
		select {
		case link.ack <- seq:
		default:
		}
	}
}

// appendDataFrame encodes m as a length-prefixed data frame:
//
//	u32 payloadLen | u8 type | u64 seq | i32 from | i32 to |
//	u8 kind | u8 tag | i32 mode | i32 iter | u32 nrows | u32 nvals |
//	nrows × i32 row | nvals × f64 value
//
// All integers little-endian; float64 values as IEEE-754 bits.
func appendDataFrame(buf []byte, m *Message, seq uint64) []byte {
	payload := 1 + 8 + 4 + 4 + 1 + 1 + 4 + 4 + 4 + 4 + 4*len(m.Rows) + 8*len(m.Data)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	buf = append(buf, frameData)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.From)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.To)))
	buf = append(buf, uint8(m.Kind), m.Tag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.Mode)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.Iter)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Rows)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Data)))
	for _, r := range m.Rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	for _, v := range m.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// readFrame decodes one frame. For ack frames msg is nil.
func readFrame(br *bufio.Reader) (ftype byte, seq uint64, msg *Message, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(br, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("dist: tcp frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err = io.ReadFull(br, payload); err != nil {
		return 0, 0, nil, err
	}
	ftype = payload[0]
	seq = binary.LittleEndian.Uint64(payload[1:9])
	if ftype == frameAck {
		return ftype, seq, nil, nil
	}
	if len(payload) < 31 {
		return 0, 0, nil, fmt.Errorf("dist: tcp data frame truncated (%d bytes)", len(payload))
	}
	m := &Message{
		From: int(int32(binary.LittleEndian.Uint32(payload[9:13]))),
		To:   int(int32(binary.LittleEndian.Uint32(payload[13:17]))),
		Kind: MsgKind(payload[17]),
		Tag:  payload[18],
		Mode: int(int32(binary.LittleEndian.Uint32(payload[19:23]))),
		Iter: int(int32(binary.LittleEndian.Uint32(payload[23:27]))),
	}
	nrows := binary.LittleEndian.Uint32(payload[27:31])
	off := 31
	if len(payload) < off+4 {
		return 0, 0, nil, fmt.Errorf("dist: tcp data frame truncated (%d bytes)", len(payload))
	}
	nvals := binary.LittleEndian.Uint32(payload[off : off+4])
	off += 4
	want := off + 4*int(nrows) + 8*int(nvals)
	if len(payload) != want {
		return 0, 0, nil, fmt.Errorf("dist: tcp data frame size %d, want %d", len(payload), want)
	}
	if nrows > 0 {
		m.Rows = make([]int32, nrows)
		for i := range m.Rows {
			m.Rows[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
	}
	if nvals > 0 {
		m.Data = make([]float64, nvals)
		for i := range m.Data {
			m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
	}
	return ftype, seq, m, nil
}
