// Package dist is an EXTENSION beyond the (shared-memory) target paper: a
// distributed-memory simulation of CP-ALS in the style the sparse-tensor
// literature evaluates scalability — nonzero partitioners (random,
// medium-grain Cartesian, fine-grain greedy), factor-row ownership,
// communication-volume and message accounting, and a simulated distributed
// solver whose numerics must be identical to the shared-memory driver (the
// tensor-times-vector distributive law makes per-shard MTTKRP partials sum
// to the global result).
//
// Nothing here uses real networking: "processes" are tensor shards executed
// by goroutines, and communication is accounted analytically with an α–β
// (latency–bandwidth) model. The point is to reproduce the *partitioning
// quality* comparisons (volume, balance, message counts) that distributed
// CP papers report, on top of this repository's kernels.
package dist

import (
	"fmt"
	"math/rand"

	"adatm/internal/tensor"
)

// Partition assigns every nonzero of a tensor to one of P processes.
type Partition struct {
	P     int
	Owner []int32 // Owner[k] = process owning nonzero k
	Name  string
}

// Validate checks structural sanity.
func (p *Partition) Validate(x *tensor.COO) error {
	if len(p.Owner) != x.NNZ() {
		return fmt.Errorf("dist: %d owners for %d nonzeros", len(p.Owner), x.NNZ())
	}
	for k, o := range p.Owner {
		if o < 0 || int(o) >= p.P {
			return fmt.Errorf("dist: nonzero %d owned by invalid process %d", k, o)
		}
	}
	return nil
}

// Loads returns the nonzero count per process. A non-positive P yields an
// empty slice rather than a panic, so degenerate partitions stay inspectable.
func (p *Partition) Loads() []int {
	if p.P <= 0 {
		return nil
	}
	loads := make([]int, p.P)
	for _, o := range p.Owner {
		if int(o) < len(loads) {
			loads[o]++
		}
	}
	return loads
}

// Imbalance returns max/avg load. An empty partition (no nonzeros at all,
// which happens whenever P > nnz leaves every shard empty, or nnz == 0) is
// perfectly balanced by definition: 1, never NaN/Inf.
func (p *Partition) Imbalance() float64 {
	if p.P <= 0 {
		return 1
	}
	loads := p.Loads()
	max, total := 0, 0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(p.P) / float64(total)
}

// RandomPartition assigns nonzeros uniformly at random — the worst-case
// reference point for communication.
func RandomPartition(x *tensor.COO, procs int, seed int64) *Partition {
	rng := rand.New(rand.NewSource(seed))
	p := &Partition{P: procs, Owner: make([]int32, x.NNZ()), Name: "random"}
	for k := range p.Owner {
		p.Owner[k] = int32(rng.Intn(procs))
	}
	return p
}

// MediumGrainPartition imposes a Cartesian process grid over the index
// space (the checkerboard/medium-grain scheme): procs is factored into a
// grid with per-mode extents roughly proportional to the mode sizes, and a
// nonzero's owner is determined by its block coordinates.
func MediumGrainPartition(x *tensor.COO, procs int) *Partition {
	n := x.Order()
	grid := factorGrid(procs, x.Dims)
	p := &Partition{P: procs, Owner: make([]int32, x.NNZ()), Name: "medium-grain"}
	for k := 0; k < x.NNZ(); k++ {
		owner := 0
		for m := 0; m < n; m++ {
			if grid[m] == 1 {
				continue
			}
			block := int(int64(x.Inds[m][k]) * int64(grid[m]) / int64(x.Dims[m]))
			if block >= grid[m] {
				block = grid[m] - 1
			}
			owner = owner*grid[m] + block
		}
		p.Owner[k] = int32(owner)
	}
	return p
}

// factorGrid factors procs into per-mode extents, assigning factors to the
// largest remaining mode first (the standard heuristic: more slices along
// long modes cut communication in the other modes).
func factorGrid(procs int, dims []int) []int {
	n := len(dims)
	grid := make([]int, n)
	for i := range grid {
		grid[i] = 1
	}
	remaining := procs
	work := append([]int(nil), dims...)
	for remaining > 1 {
		// Smallest prime factor of remaining.
		f := 2
		for ; f*f <= remaining; f++ {
			if remaining%f == 0 {
				break
			}
		}
		if remaining%f != 0 {
			f = remaining
		}
		// Give it to the mode with the largest dims/grid ratio. The strict
		// inequality pins ties to the lowest mode index, so equal-dim
		// tensors always produce the same grid (determinism matters: the
		// partition feeds conformance baselines and audit records).
		best := 0
		for m := 1; m < n; m++ {
			if work[m]*grid[best] > work[best]*grid[m] {
				best = m
			}
		}
		grid[best] *= f
		remaining /= f
	}
	return grid
}

// FineGrainGreedyPartition assigns nonzeros one at a time to the process
// that already "knows" the most of the nonzero's index rows (a cheap
// label-propagation-flavoured heuristic), subject to a load cap. Supports
// up to 64 processes (process sets are bitmasks).
func FineGrainGreedyPartition(x *tensor.COO, procs int, seed int64) *Partition {
	if procs > 64 {
		panic("dist: fine-grain greedy supports at most 64 processes")
	}
	n := x.Order()
	if n > 16 {
		panic("dist: fine-grain greedy supports at most order-16 tensors")
	}
	nnz := x.NNZ()
	p := &Partition{P: procs, Owner: make([]int32, nnz), Name: "fine-greedy"}
	// rowProcs[m][i] = bitmask of processes already touching row i of mode m.
	rowProcs := make([]map[tensor.Index]uint64, n)
	for m := range rowProcs {
		rowProcs[m] = make(map[tensor.Index]uint64)
	}
	loads := make([]int, procs)
	cap := (nnz + procs - 1) / procs
	cap += cap / 20 // 5% slack on perfect balance
	// Visit in a shuffled order so index locality does not bias early
	// assignments.
	order := rand.New(rand.NewSource(seed)).Perm(nnz)
	for _, k := range order {
		var masks [16]uint64
		for m := 0; m < n; m++ {
			masks[m] = rowProcs[m][x.Inds[m][k]]
		}
		best, bestScore := -1, -1
		for proc := 0; proc < procs; proc++ {
			if loads[proc] >= cap {
				continue
			}
			bit := uint64(1) << uint(proc)
			score := 0
			for m := 0; m < n; m++ {
				if masks[m]&bit != 0 {
					score++
				}
			}
			// Prefer higher affinity; break ties toward the lighter load.
			if score > bestScore || (score == bestScore && best >= 0 && loads[proc] < loads[best]) {
				best, bestScore = proc, score
			}
		}
		if best < 0 { // every process at cap (cannot happen with slack > 0)
			best = 0
		}
		p.Owner[k] = int32(best)
		loads[best]++
		bit := uint64(1) << uint(best)
		for m := 0; m < n; m++ {
			rowProcs[m][x.Inds[m][k]] |= bit
		}
	}
	return p
}

// Shards splits the tensor into per-process COO shards. The shards share
// the tensor's dimensions, so per-shard MTTKRP partials align row-for-row
// with the global output (the distributive law of TTVs makes their sum the
// global MTTKRP).
func Shards(x *tensor.COO, p *Partition) []*tensor.COO {
	shards := make([]*tensor.COO, p.P)
	loads := p.Loads()
	for i := range shards {
		shards[i] = tensor.NewCOO(x.Dims, loads[i])
	}
	idx := make([]tensor.Index, x.Order())
	for k := 0; k < x.NNZ(); k++ {
		for m := range idx {
			idx[m] = x.Inds[m][k]
		}
		shards[p.Owner[k]].Append(idx, x.Vals[k])
	}
	return shards
}
