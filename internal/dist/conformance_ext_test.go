package dist_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"adatm/internal/coo"
	"adatm/internal/cpd"
	"adatm/internal/csf"
	"adatm/internal/dense"
	"adatm/internal/dist"
	"adatm/internal/engine"
	"adatm/internal/memo"
	"adatm/internal/tensor"
)

// This file is an *external* test package on purpose: it exercises dist
// against cpd.Run baselines, and cpd transitively imports dist (via
// audit → model → dist for partition selection), so an internal test
// package would be an import cycle.

func partitioners(x *tensor.COO, procs int) []*dist.Partition {
	return []*dist.Partition{
		dist.RandomPartition(x, procs, 1),
		dist.MediumGrainPartition(x, procs),
		dist.FineGrainGreedyPartition(x, procs, 2),
	}
}

func cooFactory(shard *tensor.COO) engine.Engine { return coo.New(shard, 1) }

// Full simulated distributed CP-ALS (the Cluster engine under cpd.Run) must
// match the shared-memory solver's trajectory from identical initial factors.
func TestDistributedALSMatchesShared(t *testing.T) {
	x := tensor.RandomClustered(3, 18, 1200, 0.6, 605)
	rng := rand.New(rand.NewSource(606))
	init := make([]*dense.Matrix, 3)
	for m := range init {
		init[m] = dense.Random(x.Dims[m], 4, rng)
	}
	shared, err := cpd.Run(x, csf.NewAllMode(x, 1), cpd.Options{Rank: 4, MaxIters: 6, Tol: 1e-14, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range partitioners(x, 6) {
		c := dist.NewCluster(x, p, func(s *tensor.COO) engine.Engine {
			if s.NNZ() == 0 {
				return coo.New(s, 1)
			}
			e, err := memo.New(s, memo.Balanced(3), 1, "")
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		got, err := cpd.Run(x, c, cpd.Options{Rank: 4, MaxIters: 6, Tol: 1e-14, Init: init})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if math.Abs(got.Fit-shared.Fit) > 1e-8 {
			t.Errorf("%s: distributed fit %.12f vs shared %.12f", p.Name, got.Fit, shared.Fit)
		}
	}
}

// conformanceTol is the agreement bound the tentpole promises: the
// distributed solver's fold/reduce trees are fixed in process order and the
// owner-side solves are row-identical to the single-node path, so the only
// divergence from the single-node loop over the same shard summation is
// float reassociation of the norm/Gram partial sums (~1e-16 per entry,
// amplified once per sweep by the conditioning of the Gram-Hadamard system).
const conformanceTol = 1e-12

// crossEngineFitTol bounds the fit against a single-node run with an
// *independent* full-tensor engine: engine-level MTTKRP summation orders
// differ, and the solve amplifies that reassociation by κ(H), so raw factor
// entries only agree to ~κ·ε. The fit, a normalized global functional,
// cancels most of it.
const crossEngineFitTol = 1e-9

func shardEngines(t *testing.T, kind string, order int) func(*tensor.COO) engine.Engine {
	t.Helper()
	return func(s *tensor.COO) engine.Engine {
		if s.NNZ() == 0 {
			return coo.New(s, 1)
		}
		switch kind {
		case "coo":
			return coo.New(s, 1)
		case "csf":
			return csf.NewAllMode(s, 1)
		case "memo":
			e, err := memo.New(s, memo.Balanced(order), 1, "")
			if err != nil {
				t.Fatal(err)
			}
			return e
		default:
			t.Fatalf("unknown shard engine %q", kind)
			return nil
		}
	}
}

// checkConformance runs cpd.Run once per fixture (memoized by the caller)
// and asserts the distributed result matches fit, λ, and every factor
// entry within conformanceTol.
func checkConformance(t *testing.T, label string, want *cpd.Result, got *dist.Result) {
	t.Helper()
	if math.Abs(got.Fit-want.Fit) > conformanceTol {
		t.Errorf("%s: fit %.15f vs single-node %.15f", label, got.Fit, want.Fit)
	}
	if got.Iters != want.Iters || got.Converged != want.Converged {
		t.Errorf("%s: trajectory diverged: iters %d/%v vs %d/%v",
			label, got.Iters, got.Converged, want.Iters, want.Converged)
	}
	for j := range want.Lambda {
		if math.Abs(got.Lambda[j]-want.Lambda[j]) > conformanceTol*(1+math.Abs(want.Lambda[j])) {
			t.Errorf("%s: lambda[%d] %g vs %g", label, j, got.Lambda[j], want.Lambda[j])
		}
	}
	for m, f := range want.Factors {
		if d := got.Factors[m].MaxAbsDiff(f); d > conformanceTol {
			t.Errorf("%s: factor %d max diff %g", label, m, d)
		}
	}
}

func conformanceFixture(t *testing.T) (*tensor.COO, cpd.Options, dist.RunOptions) {
	t.Helper()
	x := tensor.RandomClustered(3, 16, 700, 0.6, 701)
	// Zero-mean initial factors keep the Gram-Hadamard system well away
	// from rank-one (the all-positive dense.Random init makes every column
	// nearly parallel, so κ(H) blows up and amplifies even 1-ulp
	// reassociation differences past the conformance bound).
	rng := rand.New(rand.NewSource(702))
	init := make([]*dense.Matrix, x.Order())
	for m := range init {
		init[m] = dense.New(x.Dims[m], 4)
		for i := range init[m].Data {
			init[m].Data[i] = rng.NormFloat64()
		}
	}
	copt := cpd.Options{Rank: 4, MaxIters: 6, Tol: 1e-14, Init: init, TrackFit: true}
	dopt := dist.RunOptions{Rank: 4, MaxIters: 6, Tol: 1e-14, Init: init, TrackFit: true}
	return x, copt, dopt
}

// singleNodeBaseline runs the shared-memory cpd.Run over the *same* shard
// summation (the Cluster engine folds per-shard partials in process order,
// which is what dist.Run's owners do) so the comparison isolates the
// distributed protocol — fold routing, owner-side solves, reduce trees —
// from engine-level MTTKRP summation order.
func singleNodeBaseline(t *testing.T, x *tensor.COO, part *dist.Partition, kind string, copt cpd.Options) *cpd.Result {
	t.Helper()
	c := dist.NewCluster(x, part, shardEngines(t, kind, x.Order()))
	want, err := cpd.Run(x, c, copt)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestDistRunConformance: dist.Run over 1/2/4/7 processes × {coo,csf,memo}
// shard engines on the in-process transport reproduces the single-node
// cpd.Run trajectory within 1e-12, for every partitioner. The fit is also
// checked against a single-node run with an independent full-tensor engine.
func TestDistRunConformance(t *testing.T) {
	x, copt, dopt := conformanceFixture(t)
	indep, err := cpd.Run(x, coo.New(x, 1), copt)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 7} {
		parts := partitioners(x, procs)
		for ki, kind := range []string{"coo", "csf", "memo"} {
			part := parts[ki%len(parts)]
			want := singleNodeBaseline(t, x, part, kind, copt)
			c := dist.NewCluster(x, part, shardEngines(t, kind, x.Order()))
			tr := dist.NewChanTransport(procs)
			got, err := dist.Run(x, c, tr, dopt)
			tr.Close()
			if err != nil {
				t.Fatalf("P=%d %s %s: %v", procs, kind, part.Name, err)
			}
			label := fmt.Sprintf("P=%d %s %s", procs, kind, part.Name)
			checkConformance(t, label, want, got)
			if d := math.Abs(got.Fit - indep.Fit); d > crossEngineFitTol {
				t.Errorf("%s: fit %.15f vs independent engine %.15f (diff %g)", label, got.Fit, indep.Fit, d)
			}
			if procs > 1 && got.Messages == 0 {
				t.Errorf("P=%d %s: no messages sent", procs, kind)
			}
		}
	}
}

// TestDistRunConformanceTCP: the loopback TCP transport carries the same
// fixed reduction trees, so the trajectory stays within 1e-12 of the
// single-node run for P∈{2,4,7}.
func TestDistRunConformanceTCP(t *testing.T) {
	x, copt, dopt := conformanceFixture(t)
	kinds := []string{"coo", "csf", "memo"}
	for pi, procs := range []int{2, 4, 7} {
		kind := kinds[pi]
		part := dist.FineGrainGreedyPartition(x, procs, 2)
		want := singleNodeBaseline(t, x, part, kind, copt)
		c := dist.NewCluster(x, part, shardEngines(t, kind, x.Order()))
		tr, err := dist.NewTCPTransport(procs, dist.TCPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := dist.Run(x, c, tr, dopt)
		tr.Close()
		if err != nil {
			t.Fatalf("P=%d %s: %v", procs, kind, err)
		}
		checkConformance(t, fmt.Sprintf("tcp P=%d %s", procs, kind), want, got)
	}
}

// TestDistRunTransportsAgree: the chan and TCP transports must produce
// bit-identical results — the reduction order is fixed by the protocol,
// not by message arrival.
func TestDistRunTransportsAgree(t *testing.T) {
	x, _, dopt := conformanceFixture(t)
	part := dist.MediumGrainPartition(x, 4)
	run := func(tr dist.Transport) *dist.Result {
		t.Helper()
		c := dist.NewCluster(x, part, shardEngines(t, "coo", x.Order()))
		got, err := dist.Run(x, c, tr, dopt)
		tr.Close()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := run(dist.NewChanTransport(4))
	tcp, err := dist.NewTCPTransport(4, dist.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b := run(tcp)
	if a.Fit != b.Fit {
		t.Errorf("fit differs across transports: %.17g vs %.17g", a.Fit, b.Fit)
	}
	for m := range a.Factors {
		if d := a.Factors[m].MaxAbsDiff(b.Factors[m]); d != 0 {
			t.Errorf("factor %d differs across transports by %g", m, d)
		}
	}
}

// TestDistRunFitTraceMatches: with TrackFit the whole per-iteration fit
// trajectory must match the single-node trace, not only the endpoint.
func TestDistRunFitTraceMatches(t *testing.T) {
	x, copt, dopt := conformanceFixture(t)
	part := dist.RandomPartition(x, 4, 1)
	want := singleNodeBaseline(t, x, part, "coo", copt)
	c := dist.NewCluster(x, part, shardEngines(t, "coo", x.Order()))
	tr := dist.NewChanTransport(4)
	defer tr.Close()
	got, err := dist.Run(x, c, tr, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.FitTrace) != len(want.FitTrace) {
		t.Fatalf("trace length %d vs %d", len(got.FitTrace), len(want.FitTrace))
	}
	for i := range want.FitTrace {
		if math.Abs(got.FitTrace[i]-want.FitTrace[i]) > conformanceTol {
			t.Errorf("iter %d: fit %.15f vs %.15f", i+1, got.FitTrace[i], want.FitTrace[i])
		}
	}
}

// TestDistRunValidation: the argument contract errors, including a
// transport/cluster process-count mismatch.
func TestDistRunValidation(t *testing.T) {
	x := tensor.RandomClustered(3, 8, 200, 0.5, 703)
	c := dist.NewCluster(x, dist.RandomPartition(x, 2, 1), cooFactory)
	tr := dist.NewChanTransport(3)
	defer tr.Close()
	if _, err := dist.Run(x, c, tr, dist.RunOptions{Rank: 4}); err == nil {
		t.Error("P mismatch not rejected")
	}
	tr2 := dist.NewChanTransport(2)
	defer tr2.Close()
	if _, err := dist.Run(x, c, tr2, dist.RunOptions{Rank: 0}); err == nil {
		t.Error("zero rank not rejected")
	}
}

// TestDistFaultRecoveryConverges: dropped, duplicated, and delayed fold
// messages are recovered by acknowledged retransmission and sequence
// dedup, so the run still reproduces the single-node trajectory exactly —
// faults cost retries, never numerics.
func TestDistFaultRecoveryConverges(t *testing.T) {
	x, copt, dopt := conformanceFixture(t)
	part := dist.FineGrainGreedyPartition(x, 2, 2)
	want := singleNodeBaseline(t, x, part, "coo", copt)
	c := dist.NewCluster(x, part, shardEngines(t, "coo", x.Order()))
	tr, err := dist.NewTCPTransport(2, dist.TCPConfig{
		AckTimeout: 25 * time.Millisecond,
		MaxRetries: 20,
		Fault: dist.FaultConfig{
			DropProb:  0.15,
			DupProb:   0.15,
			DelayProb: 0.10,
			Delay:     40 * time.Millisecond, // beyond AckTimeout: forces retransmit + dedup
			Seed:      704,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Run(x, c, tr, dopt)
	tr.Close()
	if err != nil {
		t.Fatal(err)
	}
	checkConformance(t, "faulty tcp P=2", want, got)
	if got.Retries == 0 {
		t.Error("fault injection produced no retransmissions — the test exercised nothing")
	}
}

// TestDistFaultRetryExhausted: with every data frame dropped, Send must
// give up after MaxRetries with the typed error — bounded by the backoff
// schedule, not a hang.
func TestDistFaultRetryExhausted(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 400, 0.5, 705)
	c := dist.NewCluster(x, dist.RandomPartition(x, 2, 1), cooFactory)
	tr, err := dist.NewTCPTransport(2, dist.TCPConfig{
		AckTimeout: 10 * time.Millisecond,
		MaxRetries: 3,
		Fault:      dist.FaultConfig{DropProb: 1, Seed: 706},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	start := time.Now()
	_, err = dist.Run(x, c, tr, dist.RunOptions{Rank: 3, MaxIters: 3, Seed: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("total message loss did not fail the run")
	}
	var re *dist.RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("want dist.RetryExhaustedError, got %v", err)
	}
	if re.Attempts <= 3 {
		t.Errorf("exhausted after %d attempts, want > MaxRetries", re.Attempts)
	}
	// 10+20+40+80 ms of backoff per failed send, a handful of concurrent
	// senders: well under ten seconds unless something actually hung.
	if elapsed > 10*time.Second {
		t.Errorf("retry exhaustion took %v — looks like a hang", elapsed)
	}
}

// TestTransportBasics: FIFO per sender and payload integrity on both
// transports, including the binary codec round trip.
func TestTransportBasics(t *testing.T) {
	tcp, err := dist.NewTCPTransport(3, dist.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []dist.Transport{dist.NewChanTransport(3), tcp} {
		for s := 1; s <= 9; s++ {
			msg := &dist.Message{
				From: s % 2, To: 2, Kind: dist.MsgFold, Tag: dist.TagGram, Mode: s % 3, Iter: s,
				Rows: []int32{int32(s), int32(s + 1)},
				Data: []float64{float64(s) * 1.5, -float64(s), 0.25},
			}
			if err := tr.Send(msg); err != nil {
				t.Fatalf("%s send: %v", tr.Name(), err)
			}
		}
		lastBySender := map[int]int{}
		for n := 0; n < 9; n++ {
			m, err := tr.Recv(2)
			if err != nil {
				t.Fatalf("%s recv: %v", tr.Name(), err)
			}
			if m.Iter <= lastBySender[m.From] {
				t.Errorf("%s: per-sender FIFO violated: iter %d after %d from %d",
					tr.Name(), m.Iter, lastBySender[m.From], m.From)
			}
			lastBySender[m.From] = m.Iter
			s := m.Iter
			if m.Mode != s%3 || m.Tag != dist.TagGram || len(m.Rows) != 2 || m.Rows[0] != int32(s) ||
				len(m.Data) != 3 || m.Data[0] != float64(s)*1.5 || m.Data[2] != 0.25 {
				t.Errorf("%s: payload corrupted: %+v", tr.Name(), m)
			}
		}
		tr.Close()
		if _, err := tr.Recv(2); !errors.Is(err, dist.ErrClosed) {
			t.Errorf("%s: Recv after Close: %v", tr.Name(), err)
		}
	}
}

// TestTransportCloseUnblocksRecv: a blocked Recv must return dist.ErrClosed
// promptly when the transport closes (the abort path of a failed run).
func TestTransportCloseUnblocksRecv(t *testing.T) {
	tr := dist.NewChanTransport(2)
	done := make(chan error, 1)
	go func() {
		_, err := tr.Recv(1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tr.Close()
	select {
	case err := <-done:
		if !errors.Is(err, dist.ErrClosed) {
			t.Fatalf("want dist.ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}
