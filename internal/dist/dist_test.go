package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adatm/internal/coo"
	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/ref"
	"adatm/internal/tensor"
)

func partitioners(x *tensor.COO, procs int) []*Partition {
	return []*Partition{
		RandomPartition(x, procs, 1),
		MediumGrainPartition(x, procs),
		FineGrainGreedyPartition(x, procs, 2),
	}
}

func cooFactory(shard *tensor.COO) engine.Engine { return coo.New(shard, 1) }

func TestPartitionsValid(t *testing.T) {
	x := tensor.RandomClustered(4, 20, 1500, 0.7, 601)
	for _, procs := range []int{1, 3, 8, 16} {
		for _, p := range partitioners(x, procs) {
			if err := p.Validate(x); err != nil {
				t.Errorf("%s P=%d: %v", p.Name, procs, err)
			}
			if imb := p.Imbalance(); p.Name != "medium-grain" && imb > 1.3 {
				t.Errorf("%s P=%d: imbalance %.2f", p.Name, procs, imb)
			}
		}
	}
}

func TestShardsPartitionNonzeros(t *testing.T) {
	x := tensor.RandomClustered(3, 15, 800, 0.5, 602)
	p := FineGrainGreedyPartition(x, 5, 3)
	shards := Shards(x, p)
	total := 0
	sum := 0.0
	for _, s := range shards {
		total += s.NNZ()
		for _, v := range s.Vals {
			sum += v
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if total != x.NNZ() {
		t.Fatalf("shards hold %d of %d nonzeros", total, x.NNZ())
	}
	want := 0.0
	for _, v := range x.Vals {
		want += v
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("value mass changed: %g vs %g", sum, want)
	}
}

// The distributive law: the fold of per-shard MTTKRP partials must equal
// the global MTTKRP, for every partitioner and mode.
func TestClusterMTTKRPEquivalence(t *testing.T) {
	x := tensor.RandomClustered(4, 15, 900, 0.8, 603)
	rng := rand.New(rand.NewSource(604))
	fs := make([]*dense.Matrix, 4)
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], 5, rng)
	}
	for _, p := range partitioners(x, 7) {
		c := NewCluster(x, p, cooFactory)
		for mode := 0; mode < 4; mode++ {
			out := dense.New(x.Dims[mode], 5)
			c.MTTKRP(mode, fs, out)
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := out.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("%s mode %d: diff %g", p.Name, mode, d)
			}
		}
	}
}

func TestCommStatsOrdering(t *testing.T) {
	// On a clustered tensor, the structure-aware partitioners must move
	// less data than random.
	x := tensor.RandomClustered(3, 64, 6000, 1.0, 607)
	procs := 8
	vol := map[string]int64{}
	for _, p := range partitioners(x, procs) {
		_, stats := AnalyzeComm(x, p)
		vol[p.Name] = stats.TotalRows
		if stats.MaxRowConnectivity > procs {
			t.Fatalf("%s: connectivity %d exceeds P", p.Name, stats.MaxRowConnectivity)
		}
		if stats.TotalRows < 0 || stats.Messages < 0 {
			t.Fatalf("%s: negative stats", p.Name)
		}
	}
	if vol["fine-greedy"] >= vol["random"] {
		t.Errorf("fine-greedy volume %d not below random %d", vol["fine-greedy"], vol["random"])
	}
	if vol["medium-grain"] >= vol["random"] {
		t.Errorf("medium-grain volume %d not below random %d", vol["medium-grain"], vol["random"])
	}
}

func TestSingleProcessNoComm(t *testing.T) {
	x := tensor.RandomClustered(3, 10, 300, 0.5, 608)
	p := MediumGrainPartition(x, 1)
	_, stats := AnalyzeComm(x, p)
	if stats.TotalRows != 0 || stats.Messages != 0 {
		t.Errorf("P=1 should need no communication: %+v", stats)
	}
}

func TestRowOwnersTouchTheirRows(t *testing.T) {
	x := tensor.RandomClustered(3, 12, 500, 0.7, 609)
	p := RandomPartition(x, 4, 5)
	owners, _ := AnalyzeComm(x, p)
	// Every owner must actually touch the row it owns.
	for m := 0; m < 3; m++ {
		touch := map[tensor.Index]map[int32]bool{}
		for k := 0; k < x.NNZ(); k++ {
			i := x.Inds[m][k]
			if touch[i] == nil {
				touch[i] = map[int32]bool{}
			}
			touch[i][p.Owner[k]] = true
		}
		for i, o := range owners.Owner[m] {
			if o < 0 {
				if touch[tensor.Index(i)] != nil {
					t.Fatalf("mode %d row %d unowned but touched", m, i)
				}
				continue
			}
			if !touch[tensor.Index(i)][o] {
				t.Fatalf("mode %d row %d owned by non-touching process %d", m, i, o)
			}
		}
	}
}

func TestFactorGrid(t *testing.T) {
	grid := factorGrid(12, []int{1000, 10, 100})
	prod := 1
	for _, g := range grid {
		prod *= g
	}
	if prod != 12 {
		t.Fatalf("grid %v does not multiply to 12", grid)
	}
	// The longest mode must get at least as many slices as any other.
	if grid[0] < grid[1] || grid[0] < grid[2] {
		t.Errorf("grid %v does not favor the longest mode", grid)
	}
}

func TestPredictIterationPositive(t *testing.T) {
	x := tensor.RandomClustered(3, 20, 800, 0.6, 610)
	c := NewCluster(x, MediumGrainPartition(x, 4), cooFactory)
	d := c.PredictIteration(16, CostModel{NsPerOp: 1, AlphaNs: 1000, BetaNsByte: 0.1})
	if d <= 0 {
		t.Fatalf("non-positive predicted iteration %v", d)
	}
}

// Property: the fold equals the global MTTKRP for random partitions of
// random tensors.
func TestClusterEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(3)
		procs := 2 + rng.Intn(9)
		x := tensor.RandomClustered(order, 6+rng.Intn(10), 250, rng.Float64(), seed)
		fs := make([]*dense.Matrix, order)
		for m := range fs {
			fs[m] = dense.Random(x.Dims[m], 3, rng)
		}
		c := NewCluster(x, RandomPartition(x, procs, seed+1), cooFactory)
		mode := rng.Intn(order)
		out := dense.New(x.Dims[mode], 3)
		c.MTTKRP(mode, fs, out)
		want := ref.MTTKRPSparse(x, mode, fs)
		return out.MaxAbsDiff(want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestClusterRepartitionReusesCacheSafely pins the partials-cache key: the
// cache must be invalidated when the process count changes, not only when
// the rank does. Before the (P, rank) key, repartitioning a cluster in
// place from P=2 to P=6 panicked indexing partials[p] past the old length
// (and a shrink would have silently folded stale partials).
func TestClusterRepartitionReusesCacheSafely(t *testing.T) {
	x := tensor.RandomClustered(3, 15, 900, 0.6, 611)
	rng := rand.New(rand.NewSource(612))
	fs := make([]*dense.Matrix, 3)
	for m := range fs {
		fs[m] = dense.Random(x.Dims[m], 5, rng)
	}
	c := NewCluster(x, RandomPartition(x, 2, 1), cooFactory)
	out := dense.New(x.Dims[0], 5)
	if err := c.MTTKRP(0, fs, out); err != nil {
		t.Fatal(err)
	}

	// Repartition in place to more processes, warming the same cache.
	for _, procs := range []int{6, 3} {
		p := RandomPartition(x, procs, 1)
		owners, stats := AnalyzeComm(x, p)
		shards := Shards(x, p)
		c.Part, c.Owners, c.Comm, c.shards = p, owners, stats, shards
		c.Engines = make([]engine.Engine, procs)
		for i, s := range shards {
			c.Engines[i] = cooFactory(s)
		}
		for mode := 0; mode < 3; mode++ {
			got := dense.New(x.Dims[mode], 5)
			if err := c.MTTKRP(mode, fs, got); err != nil {
				t.Fatalf("P=%d mode %d: %v", procs, mode, err)
			}
			want := ref.MTTKRPSparse(x, mode, fs)
			if d := got.MaxAbsDiff(want); d > 1e-8 {
				t.Errorf("P=%d mode %d: diff %g", procs, mode, d)
			}
		}
	}
}
