package dist

import (
	"sort"

	"adatm/internal/tensor"
)

// Communication accounting for one CP-ALS iteration under a partition.
//
// In the fold step of mode n, every process holding nonzeros with row index
// i sends its partial MTTKRP row to the row's owner (unless it is the
// owner); the expand step mirrors it with the updated factor rows. The
// per-iteration volume in each mode is therefore Σ_i (κ_i − 1) rows, where
// κ_i counts the processes touching row i — the connectivity-1 metric of
// the fine-grain hypergraph model, evaluated exactly.

// RowOwners assigns each mode row to a process: rows are visited in
// increasing connectivity order and greedily given to the touching process
// with the smallest accumulated communication (the standard mode-
// partitioning heuristic).
type RowOwners struct {
	Owner [][]int32 // Owner[m][i] = owning process of row i in mode m (-1 if the row is empty)
}

// CommStats aggregates the per-iteration communication of a partition.
type CommStats struct {
	P int
	// TotalRows is Σ over modes and rows of (connectivity − 1): the number
	// of partial rows sent in folds (expands mirror it exactly).
	TotalRows int64
	// MaxProcRows is the largest per-process send volume (rows) across the
	// fold steps of one iteration.
	MaxProcRows int64
	// Messages is the total number of point-to-point messages per
	// iteration (distinct sender→owner pairs, folds only; expands mirror).
	Messages int64
	// MaxRowConnectivity is the worst single row's process fan-in.
	MaxRowConnectivity int
}

// VolumeBytes converts the row volume to bytes at rank r (8-byte values),
// counting both fold and expand directions.
func (c CommStats) VolumeBytes(r int) int64 { return c.TotalRows * int64(r) * 8 * 2 }

// AnalyzeComm computes row ownership and exact communication statistics
// for the partition.
func AnalyzeComm(x *tensor.COO, p *Partition) (*RowOwners, CommStats) {
	n := x.Order()
	owners := &RowOwners{Owner: make([][]int32, n)}
	stats := CommStats{P: p.P}
	procLoad := make([]int64, p.P) // accumulated send volume per process

	for m := 0; m < n; m++ {
		owners.Owner[m] = make([]int32, x.Dims[m])
		for i := range owners.Owner[m] {
			owners.Owner[m][i] = -1
		}
		// touch[i] = bitmapless process set per row, stored sparsely.
		touch := make(map[tensor.Index]map[int32]struct{})
		for k := 0; k < x.NNZ(); k++ {
			i := x.Inds[m][k]
			set, ok := touch[i]
			if !ok {
				set = make(map[int32]struct{}, 2)
				touch[i] = set
			}
			set[p.Owner[k]] = struct{}{}
		}
		// Sort rows by connectivity ascending (cheap rows first, as the
		// mode-partitioning heuristic prescribes) and assign greedily to
		// the least-loaded touching process.
		rows := make([]rowInfo, 0, len(touch))
		for i, set := range touch {
			rows = append(rows, rowInfo{i, len(set)})
			if len(set) > stats.MaxRowConnectivity {
				stats.MaxRowConnectivity = len(set)
			}
		}
		sort.Slice(rows, func(a, b int) bool {
			if rows[a].conn != rows[b].conn {
				return rows[a].conn < rows[b].conn
			}
			return rows[a].idx < rows[b].idx
		})
		msgs := make(map[int64]struct{})
		for _, ri := range rows {
			set := touch[ri.idx]
			var best int32 = -1
			for proc := range set {
				if best < 0 || procLoad[proc] < procLoad[best] ||
					(procLoad[proc] == procLoad[best] && proc < best) {
					best = proc
				}
			}
			owners.Owner[m][ri.idx] = best
			stats.TotalRows += int64(ri.conn - 1)
			for proc := range set {
				if proc != best {
					procLoad[proc]++
					msgs[int64(proc)*int64(p.P)+int64(best)] = struct{}{}
				}
			}
		}
		stats.Messages += int64(len(msgs))
	}
	for _, l := range procLoad {
		if l > stats.MaxProcRows {
			stats.MaxProcRows = l
		}
	}
	return owners, stats
}

// rowInfo pairs a mode row with its process connectivity.
type rowInfo struct {
	idx  tensor.Index
	conn int
}
