package dist

import (
	"errors"
	"fmt"
	"sync"
)

// MsgKind labels the protocol phase a Message belongs to. The distributed
// ALS loop (see run.go) exchanges four kinds of traffic: fold partials
// (touching process → row owner), expand updates (row owner → touching
// process), reduce partials (every process → process 0), and broadcast
// results (process 0 → every process).
type MsgKind uint8

const (
	MsgFold MsgKind = iota
	MsgExpand
	MsgReduce
	MsgBcast
)

func (k MsgKind) String() string {
	switch k {
	case MsgFold:
		return "fold"
	case MsgExpand:
		return "expand"
	case MsgReduce:
		return "reduce"
	case MsgBcast:
		return "bcast"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Reduce/broadcast phase tags (Message.Tag): one mode step performs two
// all-reduces (column sums-of-squares, then the partial Gram matrix) and
// each iteration ends with a scalar fit reduce. The tag disambiguates them
// so selective receive never depends on arrival order.
const (
	TagNorm uint8 = iota
	TagGram
	TagFit
)

// Message is one unit of protocol traffic. Rows names the factor-matrix
// rows the payload covers (fold/expand); Data is the row-major payload
// (len(Rows)×rank values for fold/expand, a flat vector for reduce/bcast).
// Mode is −1 for iteration-scoped phases (the fit reduce).
type Message struct {
	From, To int
	Kind     MsgKind
	Tag      uint8
	Mode     int
	Iter     int
	Rows     []int32
	Data     []float64
}

// ErrClosed is returned by Send/Recv once the transport has been closed —
// either explicitly or because a peer aborted the run.
var ErrClosed = errors.New("dist: transport closed")

// Transport moves Messages between the P processes of a cluster. Send
// blocks until the message is durably handed to the destination (for the
// TCP transport: acknowledged, possibly after retries); Recv blocks until
// a message for proc arrives or the transport closes. Implementations must
// preserve per-(sender,receiver) FIFO order for delivered messages and
// deliver each accepted message exactly once — the solver's determinism
// argument (DESIGN.md §2j) builds on those two guarantees.
type Transport interface {
	// Name identifies the implementation ("chan", "tcp") for metrics labels.
	Name() string
	// P returns the number of processes the transport connects.
	P() int
	Send(m *Message) error
	Recv(proc int) (*Message, error)
	Close() error
}

// mailbox is an unbounded FIFO queue with blocking receive. Unbounded is a
// correctness requirement, not a convenience: the SPMD protocol has phases
// where every process sends before any receives, so a bounded queue could
// deadlock the send side.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*Message
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m *Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.q = append(b.q, m)
	b.cond.Signal()
	return nil
}

func (b *mailbox) get() (*Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.q) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.q) == 0 {
		return nil, ErrClosed
	}
	m := b.q[0]
	b.q[0] = nil
	b.q = b.q[1:]
	return m, nil
}

// close wakes every blocked get and drops any queued messages: after
// close, get returns ErrClosed immediately. An aborting run must unblock
// fast, not replay stale traffic.
func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.q = nil
	b.cond.Broadcast()
	b.mu.Unlock()
}

// ChanTransport is the deterministic in-process transport: one unbounded
// mailbox per process, Send copies the payload (no memory sharing between
// sender and receiver, mirroring real network semantics). Delivery is
// immediate and loss-free.
type ChanTransport struct {
	boxes []*mailbox
	once  sync.Once
}

// NewChanTransport builds an in-process transport connecting p processes.
func NewChanTransport(p int) *ChanTransport {
	if p <= 0 {
		p = 1
	}
	t := &ChanTransport{boxes: make([]*mailbox, p)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

func (t *ChanTransport) Name() string { return "chan" }
func (t *ChanTransport) P() int       { return len(t.boxes) }

func (t *ChanTransport) Send(m *Message) error {
	if m.To < 0 || m.To >= len(t.boxes) {
		return fmt.Errorf("dist: send to invalid process %d (P=%d)", m.To, len(t.boxes))
	}
	// Deep-copy the payload: the sender is free to reuse its buffers the
	// moment Send returns, exactly as with a real wire.
	c := *m
	if len(m.Rows) > 0 {
		c.Rows = append([]int32(nil), m.Rows...)
	}
	if len(m.Data) > 0 {
		c.Data = append([]float64(nil), m.Data...)
	}
	return t.boxes[m.To].put(&c)
}

func (t *ChanTransport) Recv(proc int) (*Message, error) {
	if proc < 0 || proc >= len(t.boxes) {
		return nil, fmt.Errorf("dist: recv on invalid process %d (P=%d)", proc, len(t.boxes))
	}
	return t.boxes[proc].get()
}

func (t *ChanTransport) Close() error {
	t.once.Do(func() {
		for _, b := range t.boxes {
			b.close()
		}
	})
	return nil
}
