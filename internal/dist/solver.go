package dist

import (
	"time"

	"adatm/internal/dense"
	"adatm/internal/engine"
	"adatm/internal/par"
	"adatm/internal/tensor"
)

// Simulated distributed MTTKRP: every process computes the MTTKRP of its
// shard with its own engine (goroutine-concurrent), and the fold step sums
// the per-process partial outputs — exactly what an MPI reduce-by-owner
// performs, so the result is bit-for-bit what the owners would assemble
// (up to floating-point reassociation across processes, which we make
// deterministic by summing in process order).

// Cluster is a set of simulated processes over one tensor.
type Cluster struct {
	X      *tensor.COO
	Part   *Partition
	Owners *RowOwners
	Comm   CommStats
	// Engines holds one MTTKRP engine per process over its shard.
	Engines []engine.Engine
	shards  []*tensor.COO
	// partials[p] is process p's local MTTKRP output buffer.
	partials []*dense.Matrix
}

// NewCluster shards the tensor and builds one engine per process via the
// factory (shard) -> engine.
func NewCluster(x *tensor.COO, p *Partition, factory func(shard *tensor.COO) engine.Engine) *Cluster {
	owners, stats := AnalyzeComm(x, p)
	shards := Shards(x, p)
	c := &Cluster{X: x, Part: p, Owners: owners, Comm: stats, shards: shards}
	c.Engines = make([]engine.Engine, p.P)
	for i, s := range shards {
		c.Engines[i] = factory(s)
	}
	return c
}

// MTTKRP computes the global MTTKRP for the mode by local shard MTTKRPs
// (concurrent across processes) followed by the fold reduction into out.
// Empty shards contribute zero. The first shard error (in process order)
// is returned and the fold is skipped.
func (c *Cluster) MTTKRP(mode int, factors []*dense.Matrix, out *dense.Matrix) error {
	if err := engine.CheckInputs(c.X.Dims, mode, factors, out); err != nil {
		return err
	}
	r := out.Cols
	// The partials cache is keyed on (P, rank): a cluster whose process
	// count changed (repartitioning in place) must not reuse buffers sized
	// for the old P — indexing partials[p] for p >= len(partials) panics,
	// and a shrunken P would silently fold stale partials.
	if c.partials == nil || len(c.partials) != c.Part.P || c.partials[0].Cols != r {
		c.partials = make([]*dense.Matrix, c.Part.P)
		for i := range c.partials {
			c.partials[i] = dense.New(maxDim(c.X.Dims), r)
		}
	}
	errs := make([]error, c.Part.P)
	par.For(c.Part.P, 0, func(p int) {
		if c.shards[p].NNZ() == 0 {
			return
		}
		mm := &dense.Matrix{Rows: c.X.Dims[mode], Cols: r, Data: c.partials[p].Data[:c.X.Dims[mode]*r]}
		errs[p] = c.Engines[p].MTTKRP(mode, factors, mm)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Fold: deterministic sum in process order (an MPI reduction would be
	// order-dependent too; fixing the order keeps runs reproducible).
	out.Zero()
	rows := c.X.Dims[mode]
	par.ForRange(rows, 0, func(lo, hi int) {
		for p := 0; p < c.Part.P; p++ {
			if c.shards[p].NNZ() == 0 {
				continue
			}
			src := c.partials[p].Data[lo*r : hi*r]
			dst := out.Data[lo*r : hi*r]
			for j := range src {
				dst[j] += src[j]
			}
		}
	})
	return nil
}

// FactorUpdated forwards the invalidation to every process engine.
func (c *Cluster) FactorUpdated(mode int) {
	for _, e := range c.Engines {
		e.FactorUpdated(mode)
	}
}

// Name implements engine.Engine.
func (c *Cluster) Name() string { return "dist[" + c.Part.Name + "]" }

// Stats implements engine.Engine by summing the per-process engine
// counters.
func (c *Cluster) Stats() engine.Stats {
	var s engine.Stats
	for _, e := range c.Engines {
		es := e.Stats()
		s.HadamardOps += es.HadamardOps
		s.MTTKRPCalls += es.MTTKRPCalls
		s.MTTKRPNS += es.MTTKRPNS
		s.IndexBytes += es.IndexBytes
		s.ValueBytes += es.ValueBytes
		s.PeakValueBytes += es.PeakValueBytes
		if es.SymbolicNS > s.SymbolicNS {
			s.SymbolicNS = es.SymbolicNS
		}
	}
	return s
}

// ResetStats implements engine.Engine.
func (c *Cluster) ResetStats() {
	for _, e := range c.Engines {
		e.ResetStats()
	}
}

var _ engine.Engine = (*Cluster)(nil)

// CostModel is the α–β machine model used to predict one iteration of the
// simulated cluster.
type CostModel struct {
	NsPerOp    float64 // per Hadamard op unit on a process
	AlphaNs    float64 // per message latency
	BetaNsByte float64 // per byte of communication
}

// PredictIteration estimates one CP-ALS iteration's time under the cost
// model: the slowest process's compute plus the fold+expand communication
// of every mode.
func (c *Cluster) PredictIteration(rank int, m CostModel) time.Duration {
	// Compute: the per-process op counts are proportional to shard nnz for
	// the baseline engines; use the exact counters if available by probing
	// loads.
	loads := c.Part.Loads()
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	n := c.X.Order()
	computeNs := float64(maxLoad) * float64(n*n*rank) * m.NsPerOp
	commNs := m.AlphaNs*float64(2*c.Comm.Messages) + m.BetaNsByte*float64(c.Comm.VolumeBytes(rank))
	return time.Duration(computeNs + commNs)
}

func maxDim(dims []int) int {
	max := 0
	for _, d := range dims {
		if d > max {
			max = d
		}
	}
	return max
}
