package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adatm/internal/dense"
	"adatm/internal/obs"
	"adatm/internal/tensor"
)

// RunOptions configures one distributed CP-ALS run. The numerical knobs
// mirror cpd.Options so a distributed run with the same Rank/MaxIters/Tol/
// Seed reproduces the single-node trajectory (see the determinism argument
// in DESIGN.md §2j).
type RunOptions struct {
	Rank     int     // number of rank-one components (R)
	MaxIters int     // maximum ALS iterations (default 50)
	Tol      float64 // convergence threshold on the fit change (default 1e-5)
	Seed     int64   // RNG seed for factor initialization
	Workers  int     // per-process parallel width for dense kernels
	// Init provides initial factor matrices (one I_n × Rank matrix per
	// mode); nil selects the same random initialization cpd.Run derives
	// from Seed.
	Init []*dense.Matrix
	// TrackFit retains the per-iteration fit trajectory in Result.FitTrace.
	TrackFit bool
	// Metrics, when non-nil, receives the adatm_dist_* series (volume,
	// messages, fold time, transport retries), labeled by partition and
	// transport name.
	Metrics *obs.Registry
}

// Result holds a distributed decomposition. The solver fields mirror
// cpd.Result; the trailing fields report the communication actually
// performed.
type Result struct {
	Lambda     []float64
	Factors    []*dense.Matrix // column-normalized, assembled from the row owners
	Iters      int
	Fit        float64
	Converged  bool
	FitTrace   []float64
	MTTKRPTime time.Duration // summed across processes
	TotalTime  time.Duration
	// Comm is the partition's predicted per-iteration communication.
	Comm CommStats
	// Messages counts transport messages actually sent (folds, expands,
	// reduces, broadcasts) over the whole run.
	Messages int64
	// Retries counts transport-level retransmissions (TCP transport only).
	Retries int64
}

// retrier is the optional transport facet reporting retransmissions.
type retrier interface{ Retries() int64 }

// Run executes the full CP-ALS loop over the cluster with one SPMD worker
// goroutine per process, all communication through tr. Per mode: local
// shard MTTKRP → fold partial rows to their owners (summed in ascending
// process order, so the reduction tree is fixed) → owner-side solve and
// normalize against the replicated Gram-Hadamard system → expand updated
// rows back to every process touching them. Each process evaluates the
// identical fit from replicated state, so every process takes the same
// convergence decision with no extra synchronization.
func Run(x *tensor.COO, c *Cluster, tr Transport, opt RunOptions) (*Result, error) {
	n := x.Order()
	if opt.Rank <= 0 {
		return nil, errors.New("dist: Rank must be positive")
	}
	if n < 2 {
		return nil, errors.New("dist: tensor order must be at least 2")
	}
	if x.NNZ() == 0 {
		return nil, errors.New("dist: empty tensor")
	}
	if tr == nil {
		return nil, errors.New("dist: nil transport")
	}
	if tr.P() != c.Part.P {
		return nil, fmt.Errorf("dist: transport connects %d processes, cluster has %d", tr.P(), c.Part.P)
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 50
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-5
	}

	init, err := initFactors(x, opt)
	if err != nil {
		return nil, err
	}
	plan := buildExchangePlan(x, c.Part, c.Owners)
	shared := &runShared{normX: x.Norm()}
	unregister := registerDistMetrics(opt.Metrics, c, tr, opt.Rank, shared)
	defer unregister()

	start := time.Now()
	P := c.Part.P
	workers := make([]*distWorker, P)
	for p := 0; p < P; p++ {
		factors := make([]*dense.Matrix, n)
		for m := 0; m < n; m++ {
			factors[m] = init[m].Clone()
		}
		workers[p] = &distWorker{
			id: p, c: c, plan: plan, tr: tr, opt: opt, shared: shared,
			factors: factors,
			inbox:   &inbox{tr: tr, me: p},
		}
	}
	errs := make([]error, P)
	var closeOnce sync.Once
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = workers[p].run()
			if errs[p] != nil {
				// Unblock every peer stuck in Recv or Send: the transport
				// close turns their blocking calls into ErrClosed.
				closeOnce.Do(func() { tr.Close() })
			}
		}(p)
	}
	wg.Wait()
	// Prefer the root-cause error (in process order) over the ErrClosed
	// cascade it triggered in the other workers.
	for p := 0; p < P; p++ {
		if errs[p] != nil && !errors.Is(errs[p], ErrClosed) {
			return nil, fmt.Errorf("dist: process %d: %w", p, errs[p])
		}
	}
	for p := 0; p < P; p++ {
		if errs[p] != nil {
			return nil, fmt.Errorf("dist: process %d: %w", p, errs[p])
		}
	}

	// Assemble the result factors from the owners: each owner's replica
	// holds the authoritative rows it updated; rows no process owns are
	// empty rows, zero after the first update (matching the single-node
	// solver, whose zero MTTKRP rows solve and normalize to zero).
	res := &Result{
		Lambda:  append([]float64(nil), workers[0].lambda...),
		Factors: make([]*dense.Matrix, n),
		Iters:   workers[0].iters, Fit: workers[0].fit, Converged: workers[0].converged,
		FitTrace:  workers[0].fitTrace,
		TotalTime: time.Since(start),
		Comm:      c.Comm,
		Messages:  shared.msgs.Load(),
	}
	res.MTTKRPTime = time.Duration(shared.mttkrpNS.Load())
	if rt, ok := tr.(retrier); ok {
		res.Retries = rt.Retries()
	}
	for m := 0; m < n; m++ {
		out := dense.New(x.Dims[m], opt.Rank)
		for q := 0; q < P; q++ {
			for _, i := range plan.own[m][q] {
				copy(out.Row(int(i)), workers[q].factors[m].Row(int(i)))
			}
		}
		res.Factors[m] = out
	}
	return res, nil
}

// initFactors mirrors cpd's initialization bit for bit: one RNG seeded
// from Seed, consumed mode by mode in natural order.
func initFactors(x *tensor.COO, opt RunOptions) ([]*dense.Matrix, error) {
	n := x.Order()
	if opt.Init != nil {
		if len(opt.Init) != n {
			return nil, fmt.Errorf("dist: %d initial factors for order-%d tensor", len(opt.Init), n)
		}
		factors := make([]*dense.Matrix, n)
		for m, f := range opt.Init {
			if f.Rows != x.Dims[m] || f.Cols != opt.Rank {
				return nil, fmt.Errorf("dist: initial factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, x.Dims[m], opt.Rank)
			}
			factors[m] = f.Clone()
		}
		return factors, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*dense.Matrix, n)
	for m := 0; m < n; m++ {
		factors[m] = dense.Random(x.Dims[m], opt.Rank, rng)
	}
	return factors, nil
}

// runShared is the cross-worker accounting the drivers and metric
// callbacks read.
type runShared struct {
	normX    float64
	msgs     atomic.Int64
	foldNS   atomic.Int64
	mttkrpNS atomic.Int64
}

// registerDistMetrics wires the adatm_dist_* series. Function metrics are
// registered once per (name, labels) pair, so repeated runs over the same
// registry with the same partition/transport labels keep reporting the
// first run's state; the CLI builds one registry per run.
func registerDistMetrics(reg *obs.Registry, c *Cluster, tr Transport, rank int, shared *runShared) func() {
	if reg == nil {
		return func() {}
	}
	labels := obs.Labels{"partition": c.Part.Name, "transport": tr.Name()}
	vol := c.Comm.VolumeBytes(rank)
	reg.GaugeFunc("adatm_dist_volume_bytes",
		"Predicted fold+expand communication volume per iteration (bytes) under the chosen partition.",
		labels, func() float64 { return float64(vol) })
	reg.CounterFunc("adatm_dist_messages_total",
		"Transport messages sent by the distributed solver (folds, expands, reduces, broadcasts).",
		labels, func() float64 { return float64(shared.msgs.Load()) })
	reg.CounterFunc("adatm_dist_fold_seconds_total",
		"Time spent gathering and summing fold partials, across all processes.",
		labels, func() float64 { return float64(shared.foldNS.Load()) / 1e9 })
	retries := func() float64 { return 0 }
	if rt, ok := tr.(retrier); ok {
		retries = func() float64 { return float64(rt.Retries()) }
	}
	reg.CounterFunc("adatm_dist_retries_total",
		"Transport-level retransmissions (TCP transport; 0 for the in-process transport).",
		labels, retries)
	return func() {}
}

// exchangePlan is the symbolic communication schedule, computed once from
// the partition and row ownership and shared read-only by every worker.
type exchangePlan struct {
	// own[m][q] lists the rows process q owns in mode m, ascending.
	own [][][]int32
	// fold[m][p][q] lists the rows process p touches that q owns (p ≠ q),
	// ascending: p sends exactly these rows' partials to q in mode m's
	// fold, and q returns the same rows updated in the expand.
	fold [][][][]int32
	// self[m][p] lists the rows p both touches and owns, ascending: the
	// local contribution to p's fold sum.
	self [][][]int32
}

func buildExchangePlan(x *tensor.COO, part *Partition, owners *RowOwners) *exchangePlan {
	n := x.Order()
	P := part.P
	plan := &exchangePlan{
		own:  make([][][]int32, n),
		fold: make([][][][]int32, n),
		self: make([][][]int32, n),
	}
	for m := 0; m < n; m++ {
		touched := make([]map[int32]struct{}, P)
		for p := range touched {
			touched[p] = make(map[int32]struct{})
		}
		for k := 0; k < x.NNZ(); k++ {
			touched[part.Owner[k]][int32(x.Inds[m][k])] = struct{}{}
		}
		plan.own[m] = make([][]int32, P)
		for i, q := range owners.Owner[m] {
			if q >= 0 {
				plan.own[m][q] = append(plan.own[m][q], int32(i))
			}
		}
		plan.fold[m] = make([][][]int32, P)
		plan.self[m] = make([][]int32, P)
		for p := 0; p < P; p++ {
			plan.fold[m][p] = make([][]int32, P)
			rows := make([]int32, 0, len(touched[p]))
			for i := range touched[p] {
				rows = append(rows, i)
			}
			sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
			for _, i := range rows {
				q := owners.Owner[m][i]
				if int(q) == p {
					plan.self[m][p] = append(plan.self[m][p], i)
				} else {
					plan.fold[m][p][q] = append(plan.fold[m][p][q], i)
				}
			}
		}
	}
	return plan
}

// inbox wraps the transport's Recv with selective receive: messages for a
// later protocol phase are stashed until their phase asks for them. Safe
// because the transport preserves per-sender FIFO order and each worker's
// phases are totally ordered.
type inbox struct {
	tr      Transport
	me      int
	pending []*Message
}

func (b *inbox) recvMatch(kind MsgKind, tag uint8, mode, iter, from int) (*Message, error) {
	match := func(m *Message) bool {
		return m.Kind == kind && m.Tag == tag && m.Mode == mode && m.Iter == iter && m.From == from
	}
	for idx, m := range b.pending {
		if match(m) {
			b.pending = append(b.pending[:idx], b.pending[idx+1:]...)
			return m, nil
		}
	}
	for {
		m, err := b.tr.Recv(b.me)
		if err != nil {
			return nil, err
		}
		if match(m) {
			return m, nil
		}
		b.pending = append(b.pending, m)
	}
}

// distWorker is one SPMD process: a full factor replica, the replicated
// Gram matrices, and the shard engine.
type distWorker struct {
	id      int
	c       *Cluster
	plan    *exchangePlan
	tr      Transport
	opt     RunOptions
	shared  *runShared
	inbox   *inbox
	factors []*dense.Matrix
	lambda  []float64

	// Outputs read by the driver after the join (worker 0 is authoritative
	// for the scalar results; every worker computes identical values).
	iters     int
	fit       float64
	converged bool
	fitTrace  []float64
}

func (w *distWorker) send(m *Message) error {
	m.From = w.id
	w.shared.msgs.Add(1)
	return w.tr.Send(m)
}

func (w *distWorker) run() error {
	n := w.c.X.Order()
	r := w.opt.Rank
	P := w.c.Part.P
	dims := w.c.X.Dims
	eng := w.c.Engines[w.id]
	shard := w.c.shards[w.id]

	grams := make([]*dense.Matrix, n)
	for m := 0; m < n; m++ {
		grams[m] = dense.Gram(w.factors[m], nil, w.opt.Workers)
	}
	w.lambda = make([]float64, r)

	maxOwn := 0
	for m := 0; m < n; m++ {
		if l := len(w.plan.own[m][w.id]); l > maxOwn {
			maxOwn = l
		}
	}
	mm := dense.New(maxDim(dims), r)
	h := dense.New(r, r)
	foldBuf := make([]float64, maxOwn*r)
	lastFold := make([]float64, len(w.plan.own[n-1][w.id])*r)
	redNorm := make([]float64, r)
	redGram := make([]float64, r*r)
	redFit := make([]float64, 1)

	prevFit := math.Inf(-1)
	lastMode := n - 1
	for iter := 1; iter <= w.opt.MaxIters; iter++ {
		for mode := 0; mode < n; mode++ {
			ownRows := w.plan.own[mode][w.id]
			// Local MTTKRP over the shard.
			if shard.NNZ() > 0 {
				mmv := &dense.Matrix{Rows: dims[mode], Cols: r, Data: mm.Data[:dims[mode]*r]}
				t0 := time.Now()
				if err := eng.MTTKRP(mode, w.factors, mmv); err != nil {
					return err
				}
				w.shared.mttkrpNS.Add(time.Since(t0).Nanoseconds())
			}
			// Fold sends: partial rows to their owners.
			for q := 0; q < P; q++ {
				rows := w.plan.fold[mode][w.id][q]
				if len(rows) == 0 {
					continue
				}
				data := make([]float64, len(rows)*r)
				for j, i := range rows {
					copy(data[j*r:(j+1)*r], mm.Row(int(i)))
				}
				if err := w.send(&Message{To: q, Kind: MsgFold, Mode: mode, Iter: iter, Rows: rows, Data: data}); err != nil {
					return err
				}
			}
			// Fold gather: receive every expected partial, then sum in
			// ascending process order — the fixed reduction tree that makes
			// the run transport-independent and reproducible.
			t0 := time.Now()
			fb := foldBuf[:len(ownRows)*r]
			for i := range fb {
				fb[i] = 0
			}
			incoming := make([]*Message, P)
			for p := 0; p < P; p++ {
				if p == w.id || len(w.plan.fold[mode][p][w.id]) == 0 {
					continue
				}
				msg, err := w.inbox.recvMatch(MsgFold, 0, mode, iter, p)
				if err != nil {
					return err
				}
				incoming[p] = msg
			}
			for p := 0; p < P; p++ {
				if p == w.id {
					for _, i := range w.plan.self[mode][w.id] {
						j := rowPos(ownRows, i)
						src := mm.Row(int(i))
						dst := fb[j*r : (j+1)*r]
						for k := range dst {
							dst[k] += src[k]
						}
					}
				} else if msg := incoming[p]; msg != nil {
					for k, i := range msg.Rows {
						j := rowPos(ownRows, i)
						src := msg.Data[k*r : (k+1)*r]
						dst := fb[j*r : (j+1)*r]
						for c := range dst {
							dst[c] += src[c]
						}
					}
				}
			}
			w.shared.foldNS.Add(time.Since(t0).Nanoseconds())

			// H = ∘_{i≠mode} W⁽ⁱ⁾, replicated (grams are replicated, so H
			// is bit-identical on every process).
			h.Fill(1)
			for i := 0; i < n; i++ {
				if i != mode {
					dense.Hadamard(h, grams[i], h)
				}
			}
			// The fit needs the pre-solve MTTKRP rows of the last mode.
			if mode == lastMode {
				copy(lastFold, fb)
			}
			// Owner-side solve: rows are independent given the Cholesky of
			// H, so solving only the owned rows is bit-identical to the
			// single-node solve of the full matrix, row for row.
			ownM := &dense.Matrix{Rows: len(ownRows), Cols: r, Data: fb}
			dense.SolveSPDInPlace(h, ownM, w.opt.Workers)

			// Column norms: partial sums of squares over owned rows,
			// all-reduced in process order.
			for j := range redNorm {
				redNorm[j] = 0
			}
			for j := 0; j < len(ownRows); j++ {
				row := fb[j*r : (j+1)*r]
				for k, v := range row {
					redNorm[k] += v * v
				}
			}
			if err := w.allReduce(redNorm, TagNorm, mode, iter); err != nil {
				return err
			}
			// Normalize owned rows exactly as dense.NormalizeColumns does
			// (multiply by the reciprocal; zero columns stay as-is) so the
			// scaled entries are bit-identical to the single-node path.
			inv := redGram[:r] // scratch; redGram is zeroed before its own use
			for j := range redNorm {
				w.lambda[j] = math.Sqrt(redNorm[j])
				if w.lambda[j] > 0 {
					inv[j] = 1 / w.lambda[j]
				} else {
					inv[j] = 1
				}
			}
			for j, i := range ownRows {
				row := fb[j*r : (j+1)*r]
				for k := range row {
					row[k] *= inv[k]
				}
				copy(w.factors[mode].Row(int(i)), row)
			}
			// Expand: owners return the updated rows to every process that
			// touches them (the mirror of the fold edges).
			for p := 0; p < P; p++ {
				rows := w.plan.fold[mode][p][w.id]
				if len(rows) == 0 {
					continue
				}
				data := make([]float64, len(rows)*r)
				for j, i := range rows {
					copy(data[j*r:(j+1)*r], w.factors[mode].Row(int(i)))
				}
				if err := w.send(&Message{To: p, Kind: MsgExpand, Mode: mode, Iter: iter, Rows: rows, Data: data}); err != nil {
					return err
				}
			}
			for q := 0; q < P; q++ {
				if len(w.plan.fold[mode][w.id][q]) == 0 {
					continue
				}
				msg, err := w.inbox.recvMatch(MsgExpand, 0, mode, iter, q)
				if err != nil {
					return err
				}
				for k, i := range msg.Rows {
					copy(w.factors[mode].Row(int(i)), msg.Data[k*r:(k+1)*r])
				}
			}
			// Replicated Gram update: partial over owned rows, all-reduced
			// in process order. Unowned rows are empty rows — zero after
			// their first update, contributing nothing, exactly as in the
			// single-node Gram over the full factor.
			for j := range redGram {
				redGram[j] = 0
			}
			for _, i := range ownRows {
				row := w.factors[mode].Row(int(i))
				for a := 0; a < r; a++ {
					va := row[a]
					for b := 0; b < r; b++ {
						redGram[a*r+b] += va * row[b]
					}
				}
			}
			if err := w.allReduce(redGram, TagGram, mode, iter); err != nil {
				return err
			}
			copy(grams[mode].Data, redGram)
			eng.FactorUpdated(mode)
		}

		// Fit: the inner product ⟨X, X̂⟩ needs the last mode's pre-solve
		// MTTKRP rows and normalized factor rows — both owner-resident — so
		// only a scalar partial is reduced. ‖X̂‖² comes from the replicated
		// grams and λ, identical everywhere.
		ownLast := w.plan.own[lastMode][w.id]
		inner := 0.0
		for j, i := range ownLast {
			mrow := lastFold[j*r : (j+1)*r]
			frow := w.factors[lastMode].Row(int(i))
			for k := 0; k < r; k++ {
				inner += w.lambda[k] * mrow[k] * frow[k]
			}
		}
		redFit[0] = inner
		if err := w.allReduce(redFit, TagFit, -1, iter); err != nil {
			return err
		}
		inner = redFit[0]
		hadAll := dense.HadamardAll(grams)
		normEst2 := 0.0
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				normEst2 += w.lambda[a] * w.lambda[b] * hadAll.At(a, b)
			}
		}
		normX := w.shared.normX
		res2 := normX*normX + normEst2 - 2*inner
		if res2 < 0 {
			res2 = 0
		}
		fit := 0.0
		if normX > 0 {
			fit = 1 - math.Sqrt(res2)/normX
		}
		w.iters = iter
		w.fit = fit
		if w.opt.TrackFit {
			w.fitTrace = append(w.fitTrace, fit)
		}
		// Every process computed the identical fit from replicated state,
		// so this branch is taken (or not) unanimously — no vote needed.
		if math.Abs(fit-prevFit) < w.opt.Tol {
			w.converged = true
			break
		}
		prevFit = fit
	}
	return nil
}

// allReduce sums v element-wise across all processes with a fixed
// association: process 0 gathers partials in ascending process order
// (its own partial first) and broadcasts the total. Every transport
// therefore produces bit-identical sums.
func (w *distWorker) allReduce(v []float64, tag uint8, mode, iter int) error {
	P := w.c.Part.P
	if P == 1 {
		return nil
	}
	if w.id != 0 {
		if err := w.send(&Message{To: 0, Kind: MsgReduce, Tag: tag, Mode: mode, Iter: iter, Data: v}); err != nil {
			return err
		}
		msg, err := w.inbox.recvMatch(MsgBcast, tag, mode, iter, 0)
		if err != nil {
			return err
		}
		copy(v, msg.Data)
		return nil
	}
	for p := 1; p < P; p++ {
		msg, err := w.inbox.recvMatch(MsgReduce, tag, mode, iter, p)
		if err != nil {
			return err
		}
		for j := range v {
			v[j] += msg.Data[j]
		}
	}
	for p := 1; p < P; p++ {
		if err := w.send(&Message{To: p, Kind: MsgBcast, Tag: tag, Mode: mode, Iter: iter, Data: v}); err != nil {
			return err
		}
	}
	return nil
}

// rowPos locates row i in the sorted owned-row list.
func rowPos(rows []int32, i int32) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
