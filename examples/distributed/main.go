// Distributed simulation: partition a tensor across simulated processes,
// compare the partitioners' communication footprints, and verify that the
// simulated distributed CP-ALS reaches exactly the same solution as the
// shared-memory solver (extension beyond the shared-memory target paper).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"adatm"
	"adatm/internal/coo"
	"adatm/internal/dist"
	"adatm/internal/engine"
	"adatm/internal/tensor"
)

func main() {
	x := adatm.Generate(adatm.GenSpec{
		Name: "web", Dims: []int{5000, 4000, 800, 365}, NNZ: 200000,
		Skew: []float64{0.6, 0.6, 0.8, 0.1}, Seed: 31,
	})
	fmt.Println("tensor:", x)
	const procs = 16
	rank := 16

	fmt.Printf("\n%-14s %12s %12s %10s %10s\n", "partitioner", "volume/iter", "messages", "imbalance", "pred iter")
	cm := dist.CostModel{NsPerOp: 1, AlphaNs: 1000, BetaNsByte: 0.1}
	parts := []*dist.Partition{
		dist.RandomPartition(x, procs, 1),
		dist.MediumGrainPartition(x, procs),
		dist.FineGrainGreedyPartition(x, procs, 2),
	}
	factory := func(s *tensor.COO) engine.Engine { return coo.New(s, 1) }
	var best *dist.Cluster
	for _, p := range parts {
		c := dist.NewCluster(x, p, factory)
		fmt.Printf("%-14s %12s %12d %10.2f %10v\n", p.Name,
			fmt.Sprintf("%.1fMiB", float64(c.Comm.VolumeBytes(rank))/(1<<20)),
			c.Comm.Messages, p.Imbalance(), c.PredictIteration(rank, cm).Round(1000))
		if p.Name == "fine-greedy" {
			best = c
		}
	}

	// The simulated cluster is a drop-in engine: run the same decomposition
	// distributed and shared, same seed, and compare.
	shared, err := adatm.Decompose(x, adatm.Options{Rank: rank, MaxIters: 6, Tol: 1e-12, Seed: 7, Engine: adatm.EngineCSF})
	if err != nil {
		log.Fatal(err)
	}
	distributed, err := adatm.DecomposeWith(x, best, adatm.Options{Rank: rank, MaxIters: 6, Tol: 1e-12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared-memory fit:  %.10f\n", shared.Fit)
	fmt.Printf("distributed fit:    %.10f   (difference %.2e — FP reassociation only)\n",
		distributed.Fit, shared.Fit-distributed.Fit)
}
