// Quickstart: generate a small sparse tensor, decompose it with the
// model-driven (adaptive) engine, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adatm"
)

func main() {
	// A 4-order tensor with a planted rank-3 signal plus noise, mimicking a
	// (user, item, tag, week) interaction log.
	x := adatm.Generate(adatm.GenSpec{
		Name: "quickstart",
		Dims: []int{300, 400, 250, 52},
		NNZ:  80000,
		Skew: []float64{0.4, 0.4, 0.6, 0.1},
		Rank: 3, Noise: 0.02,
		Seed: 7,
	})
	fmt.Println("tensor:", x)

	// Ask the cost model what it would do before running anything.
	plan := adatm.PlanFor(x, 8, 0)
	fmt.Print(plan)

	res, err := adatm.Decompose(x, adatm.Options{
		Rank:     8,
		MaxIters: 40,
		Tol:      1e-6,
		Seed:     1,
		Engine:   adatm.EngineAdaptive,
		TrackFit: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged=%v after %d iterations, fit=%.4f\n", res.Converged, res.Iters, res.Fit)
	fmt.Println("(absolute fits on very sparse tensors are small — implicit zeros dominate the norm;")
	fmt.Println(" what matters is the relative improvement over the initialization and across ranks)")
	fmt.Printf("component weights (lambda): %.3g\n", res.Lambda)
	fmt.Printf("time: total=%v, mttkrp=%v\n", res.TotalTime.Round(1e6), res.MTTKRPTime.Round(1e6))

	// Reconstruct a few entries and compare with the stored values.
	fmt.Println("\nsample reconstructions:")
	for k := 0; k < 3; k++ {
		idx := make([]adatm.Index, x.Order())
		for m := range idx {
			idx[m] = x.Inds[m][k*97]
		}
		fmt.Printf("  x%v = %.4f, model says %.4f\n", idx, x.Vals[k*97], adatm.Reconstruct(res, idx))
	}
}
