// Healthcare phenotyping: factorize a higher-order (patient × diagnosis ×
// medication × visit-month) count tensor and read the rank-one components
// as computational phenotypes — the motivating application for higher-order
// sparse CP in the paper's line of work.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"sort"

	"adatm"
)

const (
	patients = 3000
	diags    = 500
	meds     = 300
	months   = 36
	rank     = 10
)

func main() {
	// Co-occurrence counts with a planted rank-5 structure standing in for
	// five latent disease patterns. Diagnoses and medications are heavily
	// skewed (a few codes dominate), as in real claims data.
	x := adatm.Generate(adatm.GenSpec{
		Name: "claims",
		Dims: []int{patients, diags, meds, months},
		NNZ:  250000,
		Skew: []float64{0.2, 0.8, 0.8, 0.1},
		Rank: 5, Noise: 0.05,
		Seed: 2024,
	})
	fmt.Println("claims tensor:", x)

	// Higher-order tensors are where the model-driven engine matters; show
	// what it decided.
	fmt.Print(adatm.PlanFor(x, rank, 0))

	res, err := adatm.Decompose(x, adatm.Options{
		Rank: rank, MaxIters: 40, Tol: 1e-5, Seed: 11,
		Engine: adatm.EngineAdaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfit=%.4f after %d iterations (mttkrp %v of %v total)\n\n",
		res.Fit, res.Iters, res.MTTKRPTime.Round(1e6), res.TotalTime.Round(1e6))

	// Print each phenotype: its weight, top diagnoses, top medications, and
	// temporal spread.
	order := make([]int, rank)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Lambda[order[a]] > res.Lambda[order[b]] })
	for _, r := range order[:5] {
		fmt.Printf("phenotype %d (weight %.2f)\n", r, res.Lambda[r])
		fmt.Printf("  top diagnoses:   %v\n", topEntries(res.Factors[1], r, 4))
		fmt.Printf("  top medications: %v\n", topEntries(res.Factors[2], r, 4))
		fmt.Printf("  cohort size:     %d patients above threshold\n", countAbove(res.Factors[0], r, 0.01))
	}
}

// topEntries returns the indices of the k largest entries of column r.
func topEntries(f *adatm.Matrix, r, k int) []int {
	type iv struct {
		i int
		v float64
	}
	all := make([]iv, f.Rows)
	for i := 0; i < f.Rows; i++ {
		all[i] = iv{i, f.At(i, r)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
	out := make([]int, 0, k)
	for _, e := range all[:k] {
		out = append(out, e.i)
	}
	return out
}

func countAbove(f *adatm.Matrix, r int, thresh float64) int {
	n := 0
	for i := 0; i < f.Rows; i++ {
		if f.At(i, r) > thresh {
			n++
		}
	}
	return n
}
