// Completion: hold out 10% of the observed entries of a rating-style
// tensor, fit the rest, and predict the held-out values.
//
// The example contrasts the two semantics the library offers:
//
//   - Decompose treats unobserved coordinates as zeros (right for count
//     data) — as a completion model it is biased toward zero;
//   - Complete solves the masked problem on observed entries only (right
//     for ratings) and beats the predict-the-mean baseline.
//
// Run with:
//
//	go run ./examples/completion
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"adatm"
)

func main() {
	full := adatm.Generate(adatm.GenSpec{
		Name: "ratings",
		Dims: []int{1500, 600, 52},
		NNZ:  150000,
		Skew: []float64{0.3, 0.5, 0.1},
		Rank: 5, Noise: 0.05,
		Seed: 17,
	})
	fmt.Println("observed tensor:", full)

	train, test := split(full, 0.1, 1)
	fmt.Printf("train nnz=%d, held-out nnz=%d\n\n", train.NNZ(), test.NNZ())

	fmt.Printf("%-34s %10s\n", "model", "test RMSE")
	fmt.Printf("%-34s %10.4f\n", "predict-the-mean baseline", rmseConst(test, mean(train)))

	// Zero-imputing CP: fine for counts, poor as a completion model.
	dec, err := adatm.Decompose(train, adatm.Options{Rank: 8, MaxIters: 25, Tol: 1e-6, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %10.4f\n", "zero-imputing CP (Decompose)", rmse(test, func(idx []adatm.Index) float64 {
		return adatm.Reconstruct(dec, idx)
	}))

	// Masked completion at a few ranks.
	for _, r := range []int{2, 5, 8} {
		res, err := adatm.Complete(train, adatm.CompleteOptions{Rank: r, MaxIters: 25, Seed: 3, Ridge: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("masked completion rank=%d", r)
		fmt.Printf("%-34s %10.4f   (train RMSE %.4f, %d iters)\n", name,
			rmse(test, res.Predict), res.RMSE, res.Iters)
	}
	fmt.Println("\n(masked completion beating the mean baseline shows the factors generalize;")
	fmt.Println(" the zero-imputing model is pulled toward zero by the unobserved coordinates)")
}

// split deterministically partitions the nonzeros into train and test sets.
func split(x *adatm.Tensor, testFrac float64, seed int64) (train, test *adatm.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	train = &adatm.Tensor{Dims: append([]int(nil), x.Dims...)}
	test = &adatm.Tensor{Dims: append([]int(nil), x.Dims...)}
	for _, t := range []*adatm.Tensor{train, test} {
		t.Inds = make([][]adatm.Index, x.Order())
	}
	idx := make([]adatm.Index, x.Order())
	for k := 0; k < x.NNZ(); k++ {
		for m := range idx {
			idx[m] = x.Inds[m][k]
		}
		dst := train
		if rng.Float64() < testFrac {
			dst = test
		}
		dst.Append(idx, x.Vals[k])
	}
	return train, test
}

func mean(x *adatm.Tensor) float64 {
	s := 0.0
	for _, v := range x.Vals {
		s += v
	}
	return s / float64(x.NNZ())
}

func rmseConst(test *adatm.Tensor, c float64) float64 {
	return rmse(test, func([]adatm.Index) float64 { return c })
}

func rmse(test *adatm.Tensor, predict func([]adatm.Index) float64) float64 {
	idx := make([]adatm.Index, test.Order())
	s := 0.0
	for k := 0; k < test.NNZ(); k++ {
		for m := range idx {
			idx[m] = test.Inds[m][k]
		}
		d := test.Vals[k] - predict(idx)
		s += d * d
	}
	return math.Sqrt(s / float64(test.NNZ()))
}
