// Modelpick: watch the cost model choose different memoization strategies
// as the tensor order grows and as the memory budget tightens — the
// "model-driven" part of the paper, isolated.
//
//	go run ./examples/modelpick
package main

import (
	"fmt"

	"adatm"
)

func main() {
	fmt.Println("--- strategy choice vs tensor order ---")
	for _, order := range []int{3, 4, 6, 8} {
		dims := make([]int, order)
		skew := make([]float64, order)
		for i := range dims {
			dims[i] = 5000
			skew[i] = 0.7
		}
		x := adatm.Generate(adatm.GenSpec{Name: "x", Dims: dims, NNZ: 150000, Skew: skew, Seed: int64(order)})
		plan := adatm.PlanFor(x, 16, 0)
		flatOps := opsOf(plan, "flat")
		fmt.Printf("order %d: chose %-10s %-24s  predicted %5.2fx fewer ops than flat\n",
			order, plan.Chosen.Name, plan.Chosen.Strategy, float64(flatOps)/float64(plan.Chosen.Pred.Ops))
	}

	fmt.Println("\n--- strategy choice vs memory budget (order 6) ---")
	dims := []int{5000, 5000, 5000, 5000, 5000, 5000}
	x := adatm.Generate(adatm.GenSpec{Name: "x", Dims: dims, NNZ: 150000,
		Skew: []float64{0.7, 0.7, 0.7, 0.7, 0.7, 0.7}, Seed: 6})
	full := adatm.PlanFor(x, 16, 0)
	fullBytes := full.Chosen.Pred.IndexBytes + full.Chosen.Pred.PeakValueBytes
	for _, frac := range []float64{1.0, 0.6, 0.3, 0.05} {
		budget := int64(frac * float64(fullBytes))
		plan := adatm.PlanFor(x, 16, budget)
		aux := plan.Chosen.Pred.IndexBytes + plan.Chosen.Pred.PeakValueBytes
		fmt.Printf("budget %5.0f%% (%8.2f MiB): chose %-10s %-24s aux %.2f MiB, feasible=%v\n",
			100*frac, mib(budget), plan.Chosen.Name, plan.Chosen.Strategy, mib(aux), plan.Chosen.Feasible)
	}

	fmt.Println("\n--- permutation-aware selection (correlated non-adjacent modes) ---")
	// Modes 0 and 2 are nearly functionally dependent: the {0,2} projection
	// compresses massively, but only after a permutation makes them
	// adjacent.
	corr := correlated(120000, 77)
	natural := adatm.PlanFor(corr, 16, 0)
	pp := adatm.PlanPermutedFor(corr, 16, 0)
	fmt.Printf("natural order:  %-24s predicted ops %d\n", natural.Chosen.Strategy, natural.Chosen.Pred.Ops)
	fmt.Printf("permuted (%s): perm=%v %-18s predicted ops %d (%.2fx fewer)\n",
		pp.Chosen.Name, pp.Chosen.Perm, pp.Chosen.Plan.Chosen.Strategy, pp.Chosen.Plan.Chosen.Pred.Ops,
		float64(natural.Chosen.Pred.Ops)/float64(pp.Chosen.Plan.Chosen.Pred.Ops))

	fmt.Println("\n--- the full plan for the order-6 tensor ---")
	fmt.Print(full)
}

// correlated builds an order-4 tensor where mode 2 is a near-function of
// mode 0.
func correlated(nnz int, seed int64) *adatm.Tensor {
	spec := adatm.GenSpec{Dims: []int{4000, 3000, 4000, 2000}, NNZ: nnz, Seed: seed}
	x := adatm.Generate(spec)
	for k := range x.Inds[2] {
		x.Inds[2][k] = (x.Inds[0][k]*7 + x.Inds[2][k]%3) % adatm.Index(x.Dims[2])
	}
	x.Dedup()
	return x
}

func opsOf(plan *adatm.Plan, name string) int64 {
	for _, c := range plan.Candidates {
		if c.Name == name {
			return c.Pred.Ops
		}
	}
	return 0
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
