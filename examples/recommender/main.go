// Recommender: factorize a (user × movie × week) rating tensor and use the
// factors for temporal recommendation — the Netflix-style workload that
// motivates 3-order sparse CP in the literature.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"sort"

	"adatm"
)

const (
	users  = 2000
	movies = 800
	weeks  = 104
	rank   = 12
)

func main() {
	// Ratings with a planted preference structure: a rank-6 model stands in
	// for "genre taste × seasonal interest" signal, observed sparsely.
	x := adatm.Generate(adatm.GenSpec{
		Name: "ratings",
		Dims: []int{users, movies, weeks},
		NNZ:  200000,
		Skew: []float64{0.3, 0.6, 0.1}, // blockbusters get most ratings
		Rank: 6, Noise: 0.05,
		Seed: 99,
	})
	fmt.Println("rating tensor:", x)

	res, err := adatm.Decompose(x, adatm.Options{
		Rank: rank, MaxIters: 30, Tol: 1e-5, Seed: 3,
		Engine: adatm.EngineAdaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit=%.4f after %d iterations\n\n", res.Fit, res.Iters)

	// Recommend for a few users at the most recent week: score every movie
	// by the CP model and keep the top 5 the user has not rated yet.
	rated := ratedSet(x)
	week := adatm.Index(weeks - 1)
	for _, u := range []adatm.Index{10, 500, 1500} {
		recs := recommend(res, rated, u, week, 5)
		fmt.Printf("user %4d, week %d — top movies:", u, week)
		for _, r := range recs {
			fmt.Printf("  %d(%.2f)", r.movie, r.score)
		}
		fmt.Println()
	}

	// Factor interpretation: each component's weekly profile shows when that
	// taste cluster is active.
	fmt.Println("\ncomponent seasonality (argmax week per component):")
	timeF := res.Factors[2]
	for r := 0; r < rank; r++ {
		best, bestV := 0, timeF.At(0, r)
		for w := 1; w < weeks; w++ {
			if v := timeF.At(w, r); v > bestV {
				best, bestV = w, v
			}
		}
		fmt.Printf("  component %2d (weight %.2f): peaks at week %d\n", r, res.Lambda[r], best)
	}
}

type rec struct {
	movie adatm.Index
	score float64
}

// ratedSet records which (user, movie) pairs occur in the data.
func ratedSet(x *adatm.Tensor) map[[2]adatm.Index]bool {
	set := make(map[[2]adatm.Index]bool, x.NNZ())
	for k := 0; k < x.NNZ(); k++ {
		set[[2]adatm.Index{x.Inds[0][k], x.Inds[1][k]}] = true
	}
	return set
}

func recommend(res *adatm.Result, rated map[[2]adatm.Index]bool, u, w adatm.Index, topK int) []rec {
	var recs []rec
	for m := adatm.Index(0); int(m) < movies; m++ {
		if rated[[2]adatm.Index{u, m}] {
			continue
		}
		recs = append(recs, rec{m, adatm.Reconstruct(res, []adatm.Index{u, m, w})})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].score > recs[b].score })
	if len(recs) > topK {
		recs = recs[:topK]
	}
	return recs
}
