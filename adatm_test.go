package adatm_test

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"adatm"
)

func testTensor(t *testing.T) *adatm.Tensor {
	t.Helper()
	return adatm.Generate(adatm.GenSpec{
		Name: "facade", Dims: []int{40, 30, 20, 10}, NNZ: 5000,
		Skew: []float64{0.5, 0.5, 0.5, 0.2}, Rank: 3, Noise: 0.05, Seed: 5,
	})
}

func TestEngineKindsConstructible(t *testing.T) {
	x := testTensor(t)
	for _, kind := range adatm.EngineKinds() {
		e, err := adatm.NewEngine(x, kind, adatm.EngineConfig{Rank: 8})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if e.Name() == "" {
			t.Errorf("%s: empty engine name", kind)
		}
	}
}

func TestNewEngineUnknownKind(t *testing.T) {
	x := testTensor(t)
	if _, err := adatm.NewEngine(x, "warp-drive", adatm.EngineConfig{}); err == nil {
		t.Fatal("unknown engine kind accepted")
	}
}

func TestDecomposeAllEnginesAgree(t *testing.T) {
	x := testTensor(t)
	var ref float64
	for i, kind := range adatm.EngineKinds() {
		res, err := adatm.Decompose(x, adatm.Options{Rank: 4, MaxIters: 5, Tol: 1e-12, Seed: 9, Engine: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if i == 0 {
			ref = res.Fit
			continue
		}
		if math.Abs(res.Fit-ref) > 1e-8 {
			t.Errorf("%s: fit %.10f != reference %.10f", kind, res.Fit, ref)
		}
	}
}

func TestDecomposeDefaultsToAdaptive(t *testing.T) {
	x := testTensor(t)
	res, err := adatm.Decompose(x, adatm.Options{Rank: 4, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Errorf("iters = %d", res.Iters)
	}
}

func TestPlanForBudget(t *testing.T) {
	x := testTensor(t)
	plan := adatm.PlanFor(x, 16, 0)
	if plan.Chosen.Strategy == nil || len(plan.Candidates) < 3 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	if !strings.Contains(plan.String(), "chosen") {
		t.Error("plan report does not mark the chosen candidate")
	}
	// The adaptive engine built from a custom strategy must honor it.
	e, err := adatm.NewEngine(x, adatm.EngineAdaptive, adatm.EngineConfig{Rank: 16, Strategy: plan.Candidates[len(plan.Candidates)-1].Strategy})
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("nil engine")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x := testTensor(t)
	path := filepath.Join(t.TempDir(), "x.tns.gz")
	if err := adatm.Save(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := adatm.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() {
		t.Fatalf("nnz %d != %d after round trip", y.NNZ(), x.NNZ())
	}
}

func TestProfilesExposed(t *testing.T) {
	if len(adatm.Profiles()) == 0 {
		t.Fatal("no profiles")
	}
	if _, err := adatm.Profile("flickr4d"); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructExposed(t *testing.T) {
	x := testTensor(t)
	res, err := adatm.Decompose(x, adatm.Options{Rank: 3, MaxIters: 4, Seed: 2, Engine: adatm.EngineCSF})
	if err != nil {
		t.Fatal(err)
	}
	v := adatm.Reconstruct(res, []adatm.Index{1, 2, 3, 4})
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("non-finite reconstruction %v", v)
	}
}

func TestDecomposePermutedMatchesOthers(t *testing.T) {
	x := testTensor(t)
	ref, err := adatm.Decompose(x, adatm.Options{Rank: 4, MaxIters: 6, Tol: 1e-12, Seed: 21, Engine: adatm.EngineCSF})
	if err != nil {
		t.Fatal(err)
	}
	res, err := adatm.DecomposePermuted(x, adatm.Options{Rank: 4, MaxIters: 6, Tol: 1e-12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// A permuted sweep order changes the ALS trajectory, so the fits need
	// not match exactly — but both must be finite, plausible fits of the
	// same data from the same seed.
	if math.IsNaN(res.Fit) || res.Fit <= -1 || res.Fit > 1 {
		t.Fatalf("implausible permuted fit %v", res.Fit)
	}
	if math.Abs(res.Fit-ref.Fit) > 0.2 {
		t.Errorf("permuted fit %.4f far from csf fit %.4f", res.Fit, ref.Fit)
	}
}

func TestPlanPermutedFor(t *testing.T) {
	x := testTensor(t)
	pp := adatm.PlanPermutedFor(x, 8, 0)
	if len(pp.Candidates) < 3 || pp.Chosen.Plan == nil {
		t.Fatalf("degenerate permuted plan: %+v", pp)
	}
}

func TestModeOrderOption(t *testing.T) {
	x := testTensor(t)
	res, err := adatm.Decompose(x, adatm.Options{Rank: 3, MaxIters: 3, Seed: 2, Engine: adatm.EngineCSF, ModeOrder: []int{3, 1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Errorf("iters = %d", res.Iters)
	}
	if _, err := adatm.Decompose(x, adatm.Options{Rank: 3, MaxIters: 1, Engine: adatm.EngineCSF, ModeOrder: []int{0, 0, 1, 2}}); err == nil {
		t.Error("invalid ModeOrder accepted")
	}
}

func TestModelSaveLoadFacade(t *testing.T) {
	x := testTensor(t)
	res, err := adatm.Decompose(x, adatm.Options{Rank: 3, MaxIters: 3, Seed: 4, Engine: adatm.EngineCSF})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := adatm.SaveModel(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := adatm.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := []adatm.Index{1, 2, 3, 4}
	if a, b := adatm.Reconstruct(res, idx), adatm.Reconstruct(got, idx); a != b {
		t.Errorf("reloaded model reconstructs %g, original %g", b, a)
	}
}

func TestDecomposeAPRFacade(t *testing.T) {
	x := testTensor(t)
	for k := range x.Vals {
		if x.Vals[k] < 0 {
			x.Vals[k] = -x.Vals[k]
		}
	}
	res, err := adatm.DecomposeAPR(x, adatm.APROptions{Rank: 3, MaxIters: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.LogLik) {
		t.Fatal("NaN log-likelihood")
	}
	if v := adatm.PredictAPR(res, []adatm.Index{0, 0, 0, 0}); v < 0 || math.IsNaN(v) {
		t.Errorf("implausible APR rate %g", v)
	}
}

func TestNVecsInitFacade(t *testing.T) {
	x := testTensor(t)
	init := adatm.NVecsInit(x, 3, 2, 1, 0)
	res, err := adatm.Decompose(x, adatm.Options{Rank: 3, MaxIters: 3, Engine: adatm.EngineCSF, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Errorf("iters = %d", res.Iters)
	}
}

func TestRetainBuffersFacade(t *testing.T) {
	x := testTensor(t)
	eng, err := adatm.NewEngine(x, adatm.EngineMemoBalanced, adatm.EngineConfig{Rank: 4, RetainBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := adatm.DecomposeWith(x, eng, adatm.Options{Rank: 4, MaxIters: 4, Tol: 1e-12, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := adatm.Decompose(x, adatm.Options{Rank: 4, MaxIters: 4, Tol: 1e-12, Seed: 21, Engine: adatm.EngineMemoBalanced})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit-ref.Fit) > 1e-10 {
		t.Errorf("retain-buffers fit %.12f differs from default %.12f", res.Fit, ref.Fit)
	}
}

func TestMemoryBudgetPlumbing(t *testing.T) {
	x := testTensor(t)
	// A tiny budget must still produce a working engine (fallback strategy).
	res, err := adatm.Decompose(x, adatm.Options{Rank: 4, MaxIters: 2, Engine: adatm.EngineAdaptive, MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 2 {
		t.Errorf("iters = %d", res.Iters)
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	x := testTensor(t)
	opt := adatm.Options{Rank: 4, MaxIters: 10, Tol: 1e-300, Seed: 2, Engine: adatm.EngineCOO, TrackFit: true}
	ref, err := adatm.Decompose(x, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ck")
	stopped := opt
	stopped.Checkpoint = &adatm.CheckpointConfig{Dir: dir, Every: 1, Retain: 3}
	n := 0
	stopped.Progress = func(adatm.IterStats) bool { n++; return n < 4 }
	if _, err := adatm.Decompose(x, stopped); err != nil {
		t.Fatal(err)
	}

	var ledger strings.Builder
	resumed := opt
	resumed.Checkpoint = &adatm.CheckpointConfig{Dir: dir, Every: 1, Retain: 3}
	resumed.Audit = adatm.NewAuditRecorder(adatm.AuditConfig{Ledger: &ledger})
	res, err := adatm.Resume(x, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != ref.Iters || math.Abs(res.Fit-ref.Fit) > 1e-12 {
		t.Fatalf("resumed iters=%d fit=%v, want iters=%d fit=%v", res.Iters, res.Fit, ref.Iters, ref.Fit)
	}
	if !strings.Contains(ledger.String(), "resume") {
		t.Errorf("audit ledger missing resume event: %q", ledger.String())
	}

	// Resume demands a configured checkpoint directory...
	if _, err := adatm.Resume(x, opt); err == nil {
		t.Error("Resume without Checkpoint.Dir accepted")
	}
	// ...and at least one checkpoint in it.
	empty := opt
	empty.Checkpoint = &adatm.CheckpointConfig{Dir: filepath.Join(t.TempDir(), "none")}
	if _, err := adatm.Resume(x, empty); err == nil {
		t.Error("Resume from empty directory accepted")
	}
}
